#include "spectra/theoretical.hpp"

#include <algorithm>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {

const std::vector<FragmentIon>& fragment_ions_into(
    std::string_view peptide, const TheoreticalOptions& options,
    FragmentIonWorkspace& workspace) {
  MSP_CHECK_MSG(peptide.size() >= 2,
                "cannot fragment a peptide shorter than 2");
  MSP_CHECK_MSG(options.site_deltas.empty() ||
                    options.site_deltas.size() == peptide.size(),
                "site_deltas must be empty or match peptide length");
  MSP_CHECK_MSG(options.max_fragment_charge >= 1,
                "fragment charge must be >= 1");

  // Running residue-mass prefix (with per-site deltas applied).
  std::vector<double>& prefix = workspace.prefix;
  prefix.assign(peptide.size() + 1, 0.0);
  for (std::size_t i = 0; i < peptide.size(); ++i) {
    double residue = residue_mass(peptide[i]);
    if (!options.site_deltas.empty()) residue += options.site_deltas[i];
    prefix[i + 1] = prefix[i] + residue;
  }
  const double total = prefix.back();

  std::vector<FragmentIon>& ions = workspace.ions;
  ions.clear();
  ions.reserve(2 * (peptide.size() - 1) *
               static_cast<std::size_t>(options.max_fragment_charge));
  for (unsigned cut = 1; cut < peptide.size(); ++cut) {
    // b-ion: residues [0, cut); neutral mass = prefix - water is *not*
    // subtracted — a b-ion is the acylium fragment: sum(residues).
    const double b_neutral = prefix[cut];
    // y-ion: residues [cut, n) plus water.
    const double y_neutral = total - prefix[cut] + kWaterMass;
    for (int z = 1; z <= options.max_fragment_charge; ++z) {
      if (options.include_b)
        ions.push_back(FragmentIon{mz_from_mass(b_neutral, z),
                                   FragmentIon::Type::kB, cut});
      if (options.include_y)
        ions.push_back(FragmentIon{
            mz_from_mass(y_neutral, z), FragmentIon::Type::kY,
            static_cast<unsigned>(peptide.size()) - cut});
    }
  }
  std::sort(ions.begin(), ions.end(), [](const FragmentIon& a,
                                         const FragmentIon& b) {
    return a.mz < b.mz;
  });
  return ions;
}

std::vector<FragmentIon> fragment_ions(std::string_view peptide,
                                       const TheoreticalOptions& options) {
  FragmentIonWorkspace workspace;
  fragment_ions_into(peptide, options, workspace);
  return std::move(workspace.ions);
}

Spectrum model_spectrum(std::string_view peptide,
                        const TheoreticalOptions& options) {
  const auto ions = fragment_ions(peptide, options);
  std::vector<Peak> peaks;
  peaks.reserve(ions.size());
  for (const FragmentIon& ion : ions) {
    // Tryptic CID spectra are y-ion dominated; 1.0 vs 0.6 is the usual
    // first-order weighting (the likelihood model renormalizes anyway).
    const double intensity = ion.type == FragmentIon::Type::kY ? 1.0 : 0.6;
    peaks.push_back(Peak{ion.mz, intensity});
  }
  double delta_total = 0.0;
  for (double d : options.site_deltas) delta_total += d;
  const double parent = peptide_mass(peptide) + delta_total;
  return Spectrum(std::move(peaks), mz_from_mass(parent, 1), 1,
                  std::string(peptide));
}

}  // namespace msp
