#include "spectra/theoretical.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {

void build_ion_ladder(const std::vector<FragmentIon>& ions, double bin_width,
                      IonLadder& out) {
  MSP_CHECK_MSG(bin_width > 0.0, "ladder bin width must be positive");
  out.clear();
  out.total_ions = ions.size();
  out.bins.reserve((ions.size() + kLadderBlock - 1) & ~(kLadderBlock - 1));
  std::int32_t last_bin = kLadderPadBin;
  for (const FragmentIon& ion : ions) {
    // The exact grid arithmetic BinnedSpectrum and FragmentIndex use:
    // truncation of a positive mz / width is floor.
    const double q = ion.mz / bin_width;
    const std::int32_t bin =
        q >= static_cast<double>(std::numeric_limits<std::int32_t>::max())
            ? std::numeric_limits<std::int32_t>::max()
            : static_cast<std::int32_t>(q);
    // Ions are m/z-ascending, so same-bin duplicates are adjacent: the first
    // ion claims the bin (first-hit wins), later ones are the duplicate-bin
    // double count the kernel must not re-add.
    if (bin == last_bin) continue;
    last_bin = bin;
    if (ion.type == FragmentIon::Type::kY) {
      const std::size_t entry = out.bins.size();
      while (out.y_mask.size() <= entry / kLadderBlock) out.y_mask.push_back(0);
      out.y_mask[entry / kLadderBlock] |=
          static_cast<std::uint8_t>(1u << (entry % kLadderBlock));
    }
    out.bins.push_back(bin);
  }
  out.size = out.bins.size();
  while (out.bins.size() % kLadderBlock != 0) out.bins.push_back(kLadderPadBin);
  while (out.y_mask.size() < out.bins.size() / kLadderBlock)
    out.y_mask.push_back(0);
}

const std::vector<FragmentIon>& fragment_ions_into(
    std::string_view peptide, const TheoreticalOptions& options,
    FragmentIonWorkspace& workspace) {
  MSP_CHECK_MSG(peptide.size() >= 2,
                "cannot fragment a peptide shorter than 2");
  MSP_CHECK_MSG(options.site_deltas.empty() ||
                    options.site_deltas.size() == peptide.size(),
                "site_deltas must be empty or match peptide length");
  MSP_CHECK_MSG(options.max_fragment_charge >= 1,
                "fragment charge must be >= 1");

  // Running residue-mass prefix (with per-site deltas applied).
  std::vector<double>& prefix = workspace.prefix;
  prefix.assign(peptide.size() + 1, 0.0);
  for (std::size_t i = 0; i < peptide.size(); ++i) {
    double residue = residue_mass(peptide[i]);
    if (!options.site_deltas.empty()) residue += options.site_deltas[i];
    prefix[i + 1] = prefix[i] + residue;
  }
  const double total = prefix.back();

  std::vector<FragmentIon>& ions = workspace.ions;
  ions.clear();
  ions.reserve(2 * (peptide.size() - 1) *
               static_cast<std::size_t>(options.max_fragment_charge));
  // b-ion: residues [0, cut); neutral mass = prefix — water is *not*
  // subtracted: a b-ion is the acylium fragment, sum(residues).
  // y-ion: residues [cut, n) plus water.
  //
  // In the default configuration (singly-charged b and y) the b series
  // ascends with cut and the y series descends, so walking the y series
  // from the last cut backward gives two ascending streams and a two-pointer
  // merge produces the sorted output in O(n) — this replaces a per-candidate
  // std::sort that dominated the scoring hot loop. Ties order b before y
  // (deterministic, where the sort's tie order was unspecified).
  const auto n = static_cast<unsigned>(peptide.size());
  // site_deltas could in principle be negative enough to break the series'
  // monotonicity, so modified candidates take the sort path below.
  if (options.max_fragment_charge == 1 && options.include_b &&
      options.include_y && options.site_deltas.empty()) {
    unsigned bcut = 1;
    unsigned ycut = n - 1;
    double b_mz = mz_from_mass(prefix[bcut], 1);
    double y_mz = mz_from_mass(total - prefix[ycut] + kWaterMass, 1);
    while (bcut < n && ycut >= 1) {
      if (b_mz <= y_mz) {
        ions.push_back(FragmentIon{b_mz, FragmentIon::Type::kB, bcut});
        if (++bcut < n) b_mz = mz_from_mass(prefix[bcut], 1);
      } else {
        ions.push_back(FragmentIon{y_mz, FragmentIon::Type::kY, n - ycut});
        if (--ycut >= 1)
          y_mz = mz_from_mass(total - prefix[ycut] + kWaterMass, 1);
      }
    }
    for (; bcut < n; ++bcut)
      ions.push_back(
          FragmentIon{mz_from_mass(prefix[bcut], 1), FragmentIon::Type::kB,
                      bcut});
    for (; ycut >= 1; --ycut)
      ions.push_back(
          FragmentIon{mz_from_mass(total - prefix[ycut] + kWaterMass, 1),
                      FragmentIon::Type::kY, n - ycut});
    return ions;
  }
  for (unsigned cut = 1; cut < n; ++cut) {
    const double b_neutral = prefix[cut];
    const double y_neutral = total - prefix[cut] + kWaterMass;
    for (int z = 1; z <= options.max_fragment_charge; ++z) {
      if (options.include_b)
        ions.push_back(FragmentIon{mz_from_mass(b_neutral, z),
                                   FragmentIon::Type::kB, cut});
      if (options.include_y)
        ions.push_back(FragmentIon{mz_from_mass(y_neutral, z),
                                   FragmentIon::Type::kY, n - cut});
    }
  }
  std::sort(ions.begin(), ions.end(), [](const FragmentIon& a,
                                         const FragmentIon& b) {
    return a.mz < b.mz;
  });
  return ions;
}

std::vector<FragmentIon> fragment_ions(std::string_view peptide,
                                       const TheoreticalOptions& options) {
  FragmentIonWorkspace workspace;
  fragment_ions_into(peptide, options, workspace);
  return std::move(workspace.ions);
}

Spectrum model_spectrum(std::string_view peptide,
                        const TheoreticalOptions& options) {
  const auto ions = fragment_ions(peptide, options);
  std::vector<Peak> peaks;
  peaks.reserve(ions.size());
  for (const FragmentIon& ion : ions) {
    // Tryptic CID spectra are y-ion dominated; 1.0 vs 0.6 is the usual
    // first-order weighting (the likelihood model renormalizes anyway).
    const double intensity = ion.type == FragmentIon::Type::kY ? 1.0 : 0.6;
    peaks.push_back(Peak{ion.mz, intensity});
  }
  double delta_total = 0.0;
  for (double d : options.site_deltas) delta_total += d;
  const double parent = peptide_mass(peptide) + delta_total;
  return Spectrum(std::move(peaks), mz_from_mass(parent, 1), 1,
                  std::string(peptide));
}

}  // namespace msp
