// Theoretical (model) fragment spectra.
//
// MSPolygraph compares the experimental spectrum against an on-the-fly model
// spectrum of each candidate (Section I-A, "on-the-fly generation of sequence
// averaged model spectra"). The standard CID fragmentation model: cleaving
// the peptide bond between residues i and i+1 yields an N-terminal b-ion
// (first i residues) and a C-terminal y-ion (remaining residues + water).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

struct FragmentIon {
  double mz = 0.0;
  enum class Type : unsigned char { kB, kY } type = Type::kB;
  unsigned index = 0;  ///< ion ordinal: b_i has index i, y_j has index j
};

struct TheoreticalOptions {
  int max_fragment_charge = 1;  ///< also emit 2+ fragment ions when 2
  bool include_b = true;
  bool include_y = true;
  /// Per-site mass deltas (PTMs) indexed by residue position; empty = none.
  std::vector<double> site_deltas;
};

/// Lane width of the blocked scoring kernel (scoring/kernel.hpp): IonLadder
/// bin arrays are padded to a multiple of this so the kernel can process
/// whole blocks without a tail loop.
inline constexpr std::size_t kLadderBlock = 8;

/// Sentinel bin padding entries carry: negative, so the kernel's in-range
/// test rejects padding lanes along with below-grid bins in one compare.
inline constexpr std::int32_t kLadderPadBin = -1;

/// The SoA form of a candidate's fragment-ion ladder the scoring kernel
/// consumes: the ions' spectrum-bin indices (the same floor(mz / bin_width)
/// grid BinnedSpectrum and FragmentIndex use), **deduplicated per bin** and
/// ascending. Two ions landing in one spectrum bin are a single piece of
/// evidence — one query peak cannot be matched twice — so the first ion on
/// the m/z-sorted ladder claims the bin and later ions in the same bin are
/// dropped (first-hit wins). `total_ions` preserves the pre-dedup count for
/// PeakMatchStats::total_ions. `bins` is padded to a kLadderBlock multiple
/// with kLadderPadBin; `y_mask` holds one bit per lane (bit l of block b set
/// when entry b*kLadderBlock+l is a y-ion; padding lanes are zero).
struct IonLadder {
  std::vector<std::int32_t> bins;    ///< deduped, ascending, padded
  std::vector<std::uint8_t> y_mask;  ///< per-block y-ion lane bitmask
  std::size_t size = 0;              ///< distinct bins (before padding)
  std::size_t total_ions = 0;        ///< ions before per-bin dedup

  std::size_t block_count() const { return bins.size() / kLadderBlock; }
  void clear() {
    bins.clear();
    y_mask.clear();
    size = 0;
    total_ions = 0;
  }
};

/// Build the SoA ladder of `ions` (which must be m/z-ascending, as
/// fragment_ions emits them) on the floor(mz / bin_width) grid, into `out`
/// (reusing its buffers). Bins beyond int32 range are clamped to INT32_MAX —
/// unmatchable in practice, since a binned spectrum that large cannot be
/// allocated.
void build_ion_ladder(const std::vector<FragmentIon>& ions, double bin_width,
                      IonLadder& out);

/// Reusable buffers for fragment-ion generation. The search kernel scores
/// millions of candidates; building each candidate's ions into a workspace
/// instead of a fresh vector removes two heap allocations per candidate and
/// lets one ion vector be shared across every query the candidate matches.
struct FragmentIonWorkspace {
  std::vector<double> prefix;    ///< running residue-mass prefix (scratch)
  std::vector<FragmentIon> ions; ///< output of the last fragment_ions_into
  IonLadder ladder;              ///< SoA bin form for the blocked kernel
};

/// Enumerate the fragment ions of `peptide` into `workspace.ions` (sorted by
/// m/z, identical content and order to fragment_ions — scores computed from
/// either are bit-identical). Returns the filled ion vector.
const std::vector<FragmentIon>& fragment_ions_into(
    std::string_view peptide, const TheoreticalOptions& options,
    FragmentIonWorkspace& workspace);

/// Enumerate the fragment ions of `peptide`, sorted by m/z.
std::vector<FragmentIon> fragment_ions(std::string_view peptide,
                                       const TheoreticalOptions& options = {});

/// Model spectrum: fragment ions with unit intensity, plus the conventional
/// mild weighting of y-ions (they dominate tryptic CID spectra).
Spectrum model_spectrum(std::string_view peptide,
                        const TheoreticalOptions& options = {});

}  // namespace msp
