// Theoretical (model) fragment spectra.
//
// MSPolygraph compares the experimental spectrum against an on-the-fly model
// spectrum of each candidate (Section I-A, "on-the-fly generation of sequence
// averaged model spectra"). The standard CID fragmentation model: cleaving
// the peptide bond between residues i and i+1 yields an N-terminal b-ion
// (first i residues) and a C-terminal y-ion (remaining residues + water).
#pragma once

#include <string_view>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

struct FragmentIon {
  double mz = 0.0;
  enum class Type : unsigned char { kB, kY } type = Type::kB;
  unsigned index = 0;  ///< ion ordinal: b_i has index i, y_j has index j
};

struct TheoreticalOptions {
  int max_fragment_charge = 1;  ///< also emit 2+ fragment ions when 2
  bool include_b = true;
  bool include_y = true;
  /// Per-site mass deltas (PTMs) indexed by residue position; empty = none.
  std::vector<double> site_deltas;
};

/// Reusable buffers for fragment-ion generation. The search kernel scores
/// millions of candidates; building each candidate's ions into a workspace
/// instead of a fresh vector removes two heap allocations per candidate and
/// lets one ion vector be shared across every query the candidate matches.
struct FragmentIonWorkspace {
  std::vector<double> prefix;    ///< running residue-mass prefix (scratch)
  std::vector<FragmentIon> ions; ///< output of the last fragment_ions_into
};

/// Enumerate the fragment ions of `peptide` into `workspace.ions` (sorted by
/// m/z, identical content and order to fragment_ions — scores computed from
/// either are bit-identical). Returns the filled ion vector.
const std::vector<FragmentIon>& fragment_ions_into(
    std::string_view peptide, const TheoreticalOptions& options,
    FragmentIonWorkspace& workspace);

/// Enumerate the fragment ions of `peptide`, sorted by m/z.
std::vector<FragmentIon> fragment_ions(std::string_view peptide,
                                       const TheoreticalOptions& options = {});

/// Model spectrum: fragment ions with unit intensity, plus the conventional
/// mild weighting of y-ions (they dominate tryptic CID spectra).
Spectrum model_spectrum(std::string_view peptide,
                        const TheoreticalOptions& options = {});

}  // namespace msp
