#include "util/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& help) {
  MSP_CHECK_MSG(!options_.count(name), "duplicate option --" << name);
  options_[name] = Option{Kind::kFlag, help};
  order_.push_back(name);
}

void Cli::add_int(const std::string& name, std::int64_t default_value,
                  const std::string& help) {
  MSP_CHECK_MSG(!options_.count(name), "duplicate option --" << name);
  Option opt{Kind::kInt, help};
  opt.int_value = default_value;
  opt.string_value = std::to_string(default_value);
  options_[name] = opt;
  order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  MSP_CHECK_MSG(!options_.count(name), "duplicate option --" << name);
  Option opt{Kind::kDouble, help};
  opt.double_value = default_value;
  opt.string_value = std::to_string(default_value);
  options_[name] = opt;
  order_.push_back(name);
}

void Cli::add_string(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  MSP_CHECK_MSG(!options_.count(name), "duplicate option --" << name);
  Option opt{Kind::kString, help};
  opt.string_value = default_value;
  options_[name] = opt;
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0)
      throw InvalidArgument("unexpected positional argument: " + arg);
    arg = arg.substr(2);

    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }

    auto it = options_.find(name);
    if (it == options_.end())
      throw InvalidArgument("unknown option --" + name + "\n" + help());
    Option& opt = it->second;

    if (opt.kind == Kind::kFlag) {
      if (has_value)
        throw InvalidArgument("flag --" + name + " does not take a value");
      opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw InvalidArgument("option --" + name + " requires a value");
      value = argv[++i];
    }
    opt.string_value = value;
    if (opt.kind == Kind::kInt) {
      auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), opt.int_value);
      if (ec != std::errc{} || ptr != value.data() + value.size())
        throw InvalidArgument("option --" + name +
                              " expects an integer, got '" + value + "'");
    } else if (opt.kind == Kind::kDouble) {
      try {
        std::size_t pos = 0;
        opt.double_value = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw InvalidArgument("option --" + name + " expects a number, got '" +
                              value + "'");
      }
    }
  }
  return true;
}

const Cli::Option& Cli::require(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  MSP_CHECK_MSG(it != options_.end(), "option --" << name << " not registered");
  MSP_CHECK_MSG(it->second.kind == kind,
                "option --" << name << " type mismatch");
  return it->second;
}

bool Cli::flag(const std::string& name) const {
  return require(name, Kind::kFlag).flag_value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}

double Cli::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}

const std::string& Cli::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name) const {
  const std::string& raw = require(name, Kind::kString).string_value;
  std::vector<std::int64_t> out;
  for (const auto& piece : split(raw, ',')) {
    const std::string token = trim(piece);
    if (token.empty()) continue;
    std::int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size())
      throw InvalidArgument("option --" + name + ": bad integer '" + token +
                            "'");
    out.push_back(value);
  }
  return out;
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag: break;
      case Kind::kInt: os << " <int=" << opt.int_value << '>'; break;
      case Kind::kDouble: os << " <num=" << opt.double_value << '>'; break;
      case Kind::kString: os << " <str=\"" << opt.string_value << "\">"; break;
    }
    os << "\n      " << opt.help << '\n';
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

}  // namespace msp
