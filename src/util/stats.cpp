#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace msp {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MSP_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  MSP_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<long long>(bin, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  MSP_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  MSP_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  MSP_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  MSP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += static_cast<double>(counts_[b]);
    if (seen >= target) return bin_high(b);
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t width =
        peak == 0 ? 0 : counts_[b] * max_width / peak;
    os << '[' << bin_low(b) << ", " << bin_high(b) << ") "
       << std::string(width, '#') << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  MSP_CHECK_MSG(x.size() == y.size(), "fit_linear needs paired samples");
  MSP_CHECK_MSG(x.size() >= 2, "fit_linear needs at least 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace msp
