// Deterministic retry backoff.
//
// The simulated cluster promises that a (workload, model, p, fault schedule)
// tuple fully determines every virtual-time result, so the backoff schedule
// is deliberately jitter-free: retry k always waits base * 2^k, capped.
// Randomized jitter — the right choice on a real network to avoid retry
// storms — would break trace reproducibility here.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace msp {

/// Delay before retry number `retry` (0-based): base_s * 2^retry, capped at
/// cap_s. A non-positive cap disables the cap; with the cap disabled the
/// result saturates at the largest finite double instead of overflowing to
/// infinity (an infinite virtual-time charge would poison every downstream
/// clock total). Closed form, O(1) in `retry`.
inline double exponential_backoff(int retry, double base_s, double cap_s) {
  // ldexp(base, retry) = base * 2^retry exactly (one exponent add, no
  // accumulation loop); the exponent is clamped so even INT_MAX retries
  // stay well-defined — 2^1100 overflows any double to +inf anyway.
  double delay = std::ldexp(base_s, std::clamp(retry, 0, 1100));
  if (!std::isfinite(delay)) delay = std::numeric_limits<double>::max();
  if (cap_s > 0.0) delay = std::min(delay, cap_s);
  return delay;
}

}  // namespace msp
