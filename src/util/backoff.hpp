// Deterministic retry backoff.
//
// The simulated cluster promises that a (workload, model, p, fault schedule)
// tuple fully determines every virtual-time result, so the backoff schedule
// is deliberately jitter-free: retry k always waits base * 2^k, capped.
// Randomized jitter — the right choice on a real network to avoid retry
// storms — would break trace reproducibility here.
#pragma once

#include <algorithm>

namespace msp {

/// Delay before retry number `retry` (0-based): base_s * 2^retry, capped at
/// cap_s. A non-positive cap disables the cap.
inline double exponential_backoff(int retry, double base_s, double cap_s) {
  double delay = base_s;
  for (int i = 0; i < retry; ++i) {
    delay *= 2.0;
    if (cap_s > 0.0 && delay >= cap_s) return cap_s;
  }
  if (cap_s > 0.0) delay = std::min(delay, cap_s);
  return delay;
}

}  // namespace msp
