#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace msp::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};
std::ostream* g_sink = nullptr;  // guarded by g_mutex; nullptr => std::cerr
std::mutex g_mutex;

const char* name_of(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = sink;
}

void write(Level level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& out = g_sink ? *g_sink : std::cerr;
  out << '[' << name_of(level) << "] " << message << '\n';
}

}  // namespace msp::log
