// ASCII table formatting for benchmark output. Every bench binary prints the
// same row/column layout as the corresponding paper table so the two can be
// eyeballed side by side (EXPERIMENTS.md records the pairing).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace msp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision, "-" for NaN (the
  /// paper uses '-' for runs that were not performed).
  static std::string cell(double value, int precision = 2);
  static std::string cell(std::size_t value);

  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msp
