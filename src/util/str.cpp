#include "util/str.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace msp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (auto& ch : out)
    ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_bytes(std::size_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.precision(value < 10 ? 2 : 1);
  os << std::fixed << value << ' ' << kUnits[unit];
  return os.str();
}

std::string group_digits(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace msp
