// Base64 codec (RFC 4648), needed by the mzXML reader: instrument vendors
// encode peak arrays as base64 network-order floats inside the XML.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace msp {

std::string base64_encode(const void* data, std::size_t size);
std::string base64_encode(const std::vector<std::uint8_t>& bytes);

/// Strict decode: throws InvalidArgument on characters outside the alphabet
/// (whitespace is tolerated — XML pretty-printers wrap the payload) or on a
/// malformed padding tail.
std::vector<std::uint8_t> base64_decode(std::string_view text);

}  // namespace msp
