// Small string helpers shared by the parsers; no locale dependence.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace msp {

std::vector<std::string> split(std::string_view text, char sep);
std::string trim(std::string_view text);
std::string to_upper(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);

/// Human-readable byte count ("1.5 MiB"); used in memory reports.
std::string format_bytes(std::size_t bytes);

/// "12,345,678" — the paper's tables group digits; ours match.
std::string group_digits(std::uint64_t value);

}  // namespace msp
