// Wall-clock timer for host-side measurements (build/bench bookkeeping).
// Algorithm timing in the parallel engine uses simmpi's VirtualClock instead,
// which is deterministic; this timer is only for "how long did the bench
// binary itself take" style reporting.
#pragma once

#include <chrono>

namespace msp {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace msp
