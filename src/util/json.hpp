// Minimal deterministic JSON writer for the bench/report emitters.
//
// Every sweep bench used to hand-roll its JSON with ad-hoc field names and
// whatever float formatting the default ostream gave it; this writer gives
// them one shared, deterministic rendering: objects/arrays with 2-space
// indentation, commas managed by the writer, strings escaped per RFC 8259,
// and numbers rendered with a fixed significant-digit policy so the same
// doubles always produce the same bytes (the byte-determinism contract the
// trace exporters already follow).
#pragma once

#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace msp {

class JsonWriter {
 public:
  /// Deterministic number rendering: integers (and integral doubles up to
  /// 2^53) print without a decimal point; everything else prints with up to
  /// 12 significant digits — enough to round-trip every modeled quantity,
  /// few enough to stay readable.
  static std::string number(double value) {
    MSP_CHECK_MSG(std::isfinite(value), "JSON numbers must be finite");
    if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
      std::ostringstream os;
      os << static_cast<std::int64_t>(value);
      return os.str();
    }
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
  }

  static std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static const char* hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[(c >> 4) & 0xF];
            out += hex[c & 0xF];
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key of the next member (objects only).
  JsonWriter& key(const std::string& name) {
    comma();
    os_ << '"' << escape(name) << "\": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(double v) { return raw(number(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& value(const std::string& v) {
    return raw('"' + escape(v) + '"');
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  /// key(name).value(v) in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document (all containers must be closed).
  std::string str() const {
    MSP_CHECK_MSG(depth_.empty(), "unclosed JSON container");
    return os_.str() + "\n";
  }

 private:
  struct Level {
    char kind = '{';
    bool has_member = false;
  };

  JsonWriter& raw(const std::string& text) {
    comma();
    os_ << text;
    return *this;
  }

  void comma() {
    if (pending_key_) {  // value directly after key(): no comma, no newline
      pending_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back().has_member) os_ << ',';
      depth_.back().has_member = true;
      os_ << '\n' << std::string(2 * depth_.size(), ' ');
    }
  }

  JsonWriter& open(char c) {
    comma();
    os_ << c;
    depth_.push_back({c, false});
    return *this;
  }

  JsonWriter& close(char c) {
    MSP_CHECK_MSG(!depth_.empty(), "JSON close without open");
    const bool had_members = depth_.back().has_member;
    depth_.pop_back();
    if (had_members) os_ << '\n' << std::string(2 * depth_.size(), ' ');
    os_ << c;
    return *this;
  }

  std::ostringstream os_;
  std::vector<Level> depth_;
  bool pending_key_ = false;
};

}  // namespace msp
