#include "util/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace msp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MSP_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MSP_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header arity "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  if (std::isnan(value)) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(std::size_t value) { return std::to_string(value); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace msp
