// Minimal leveled logger. Thread-safe (one mutex around the sink) because
// simmpi ranks log concurrently; hot paths must not log.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace msp::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
void set_level(Level level);
Level level();

/// Redirect output (default: std::cerr). Pass nullptr to restore the default.
/// The caller keeps ownership of the stream and must outlive all logging.
void set_sink(std::ostream* sink);

/// Emit one formatted line: "[LEVEL] message". Thread-safe.
void write(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace msp::log

#define MSP_LOG(level_)                                       \
  if (::msp::log::level() <= ::msp::log::Level::level_)       \
  ::msp::log::detail::LineBuilder(::msp::log::Level::level_)

#define MSP_DEBUG MSP_LOG(kDebug)
#define MSP_INFO MSP_LOG(kInfo)
#define MSP_WARN MSP_LOG(kWarn)
#define MSP_ERROR MSP_LOG(kError)
