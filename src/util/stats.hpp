// Streaming statistics used by the trace analysis (residual-communication /
// computation ratios, Table II commentary) and by benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace msp {

/// Welford online accumulator: mean / variance / min / max in one pass.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator (parallel reduction of per-rank stats).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for candidate-count distributions (Fig. 1b commentary).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Quantile via linear scan of bin counts (q in [0,1]).
  double quantile(double q) const;

  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Least-squares fit y = a + b*x over paired samples; used to verify the
/// "run-time linear in database size" claim from Table II.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace msp
