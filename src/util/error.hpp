// Error-handling primitives shared by every mspar module.
//
// Philosophy (per C++ Core Guidelines E.2/E.3): use exceptions for errors
// that the immediate caller cannot handle, and cheap always-on checks for
// programmer errors at module boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace msp {

/// Base class for all mspar errors so callers can catch the whole family.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unreadable input file (FASTA, MGF, config...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A caller violated a documented precondition of a public API.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A simulated rank exceeded its configured memory budget — the analogue of
/// the 1 GB-per-process OOM the paper's baseline hits at ~1.27M sequences.
class OutOfMemoryBudget : public Error {
 public:
  explicit OutOfMemoryBudget(const std::string& what) : Error(what) {}
};

/// An injected fault schedule exceeded what the recovery protocols can
/// absorb (e.g. a shard's owner and its replica holder both crashed, or a
/// schedule kills every worker). See simmpi/faults.hpp.
class FaultUnrecoverable : public Error {
 public:
  explicit FaultUnrecoverable(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MSP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace msp

/// Always-on precondition check; throws msp::InvalidArgument on failure.
#define MSP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::msp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Precondition check with a context message (streamed into the exception).
#define MSP_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream msp_os_;                                      \
      msp_os_ << msg;                                                  \
      ::msp::detail::check_failed(#expr, __FILE__, __LINE__, msp_os_.str()); \
    }                                                                  \
  } while (0)
