// Tiny declarative command-line parser for bench/example binaries.
//
// Supports "--name value", "--name=value" and boolean "--flag". Unknown
// options raise InvalidArgument so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msp {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Register options before parse(). The default value doubles as the
  /// value's type witness for the help text.
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv. Returns false (after printing help) when --help is present.
  /// Throws InvalidArgument on unknown options or malformed values.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Comma-separated int list helper ("1,2,4,8" → {1,2,4,8}).
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  std::string help() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Option() = default;
    Option(Kind kind_in, std::string help_in)
        : kind(kind_in), help(std::move(help_in)) {}
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace msp
