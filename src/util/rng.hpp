// Deterministic, fast pseudo-random number generation.
//
// Every data generator in this repository (synthetic proteins, spectra,
// noise models) derives all randomness from these engines so that a seed
// fully determines a benchmark workload — a hard requirement for
// reproducible tables. We implement splitmix64 (seeding) and xoshiro256**
// (bulk generation) from the public-domain reference algorithms rather than
// depending on std::mt19937 whose streams differ subtly across standard
// library vendors.
#pragma once

#include <cstdint>
#include <limits>

namespace msp {

/// splitmix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies UniformRandomBitGenerator
/// so it can drive <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Uses rejection-free Lemire reduction;
  /// the bias is < 2^-64 per draw, negligible for workload generation.
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    __extension__ using Uint128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<Uint128>(operator()()) * bound) >> 64);
  }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double normal();

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 — adequate for synthetic peak counts).
  std::uint64_t poisson(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

inline double Xoshiro256::normal() {
  // Box–Muller; discard the second value to keep the generator stateless
  // beyond its 256-bit core (simplifies reasoning about reproducibility).
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // sqrt/log/cos are not constexpr-friendly across toolchains; keep runtime.
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(kTwoPi * u2);
}

inline std::uint64_t Xoshiro256::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double draw = mean + __builtin_sqrt(mean) * normal();
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = __builtin_exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

}  // namespace msp
