#include "util/base64.hpp"

#include <array>

#include "util/error.hpp"

namespace msp {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> decode_table() {
  std::array<std::int8_t, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i)
    table[static_cast<std::size_t>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return table;
}

}  // namespace

std::string base64_encode(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::string out;
  out.reserve((size + 2) / 3 * 4);
  for (std::size_t i = 0; i < size; i += 3) {
    const std::uint32_t b0 = bytes[i];
    const std::uint32_t b1 = i + 1 < size ? bytes[i + 1] : 0;
    const std::uint32_t b2 = i + 2 < size ? bytes[i + 2] : 0;
    const std::uint32_t triple = (b0 << 16) | (b1 << 8) | b2;
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(i + 1 < size ? kAlphabet[(triple >> 6) & 0x3F] : '=');
    out.push_back(i + 2 < size ? kAlphabet[triple & 0x3F] : '=');
  }
  return out;
}

std::string base64_encode(const std::vector<std::uint8_t>& bytes) {
  return base64_encode(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> kDecode = decode_table();
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);

  std::uint32_t buffer = 0;
  int bits = 0;
  std::size_t padding = 0;
  for (char c : text) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0)
      throw InvalidArgument("base64: data after padding");
    const std::int8_t value = kDecode[static_cast<std::uint8_t>(c)];
    if (value < 0)
      throw InvalidArgument(std::string("base64: invalid character '") + c +
                            "'");
    buffer = (buffer << 6) | static_cast<std::uint32_t>(value);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  if (padding > 2) throw InvalidArgument("base64: too much padding");
  // Leftover bits must be zero filler only (4-char group alignment).
  if (bits >= 6) throw InvalidArgument("base64: truncated input");
  return out;
}

}  // namespace msp
