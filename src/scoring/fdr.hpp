// Target–decoy false-discovery-rate estimation.
//
// The paper's quality argument (Section I-A) is that fast engines with
// aggressive prefiltering "could miss true predictions", especially for
// metagenomic data where "a significantly higher level of statistical
// accuracy is required". To *measure* that, we need the field's standard
// yardstick: search a concatenated target+decoy database (decoys are
// reversed sequences — same length/composition/mass statistics, no true
// matches), then estimate per-PSM q-values from the decoy hit rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mass/peptide.hpp"

namespace msp {

/// Reverse every sequence; ids get `prefix` prepended ("DECOY_" default).
/// Reversal preserves length, composition, and total mass, so the decoy
/// candidate population is statistically exchangeable with the targets.
ProteinDatabase make_decoy_database(const ProteinDatabase& db,
                                    const std::string& prefix = "DECOY_");

/// Concatenate target + decoy into one searchable database.
ProteinDatabase concatenate(const ProteinDatabase& targets,
                            const ProteinDatabase& decoys);

/// True iff a hit's protein id marks it as a decoy.
bool is_decoy_id(const std::string& protein_id,
                 const std::string& prefix = "DECOY_");

/// One peptide-spectrum match entering FDR estimation.
struct Psm {
  double score = 0.0;
  bool decoy = false;
};

/// Target–decoy q-values: for every PSM, the minimum FDR at which it would
/// be accepted, where FDR(s) = (1 + #decoys with score ≥ s) / max(1,
/// #targets with score ≥ s) (the +1 is the standard conservative
/// correction). Returned in the input order; decoy entries get q = 1.
std::vector<double> estimate_q_values(const std::vector<Psm>& psms);

/// Count of target PSMs accepted at the given q-value threshold.
std::size_t accepted_at(const std::vector<Psm>& psms, double q_threshold);

}  // namespace msp
