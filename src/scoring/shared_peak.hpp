// Shared-peak-count similarity: the simplest spectrum-vs-model score and the
// building block both the hyperscore and the likelihood-ratio score reuse.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

struct PeakMatchStats {
  std::size_t matched_b = 0;       ///< b-ions with a query peak in their bin
  std::size_t matched_y = 0;
  std::size_t total_ions = 0;      ///< theoretical ions considered
  double matched_intensity = 0.0;  ///< sum of matched query-bin intensities
};

/// Count theoretical ions of `ions` that land in occupied bins of `query`.
/// Two ions falling in one bin both count (standard practice; the bin width
/// already encodes the tolerance).
PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const std::vector<FragmentIon>& ions);

/// Convenience: match `peptide`'s ions (no PTM deltas) against `query`.
PeakMatchStats match_peptide(const BinnedSpectrum& query,
                             std::string_view peptide);

/// Plain shared-peak count over precomputed ions — the primary form: the
/// engine builds each candidate's ions once (fragment_ions_into) and reuses
/// them across every matching query and across prefilter + final score.
std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const std::vector<FragmentIon>& ions);

/// Convenience: count `peptide`'s ions directly (builds them afresh).
std::size_t shared_peak_count(const BinnedSpectrum& query,
                              std::string_view peptide);

}  // namespace msp
