// Shared-peak-count similarity: the simplest spectrum-vs-model score and the
// building block both the hyperscore and the likelihood-ratio score reuse.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

struct PeakMatchStats {
  std::size_t matched_b = 0;       ///< distinct matched bins claimed by b-ions
  std::size_t matched_y = 0;
  std::size_t total_ions = 0;      ///< theoretical ions considered (pre-dedup)
  double matched_intensity = 0.0;  ///< sum of matched query-bin intensities
};

/// Count the *distinct* occupied bins of `query` that `ions` land in. Two
/// ions falling in one bin are a single match — one query peak is one piece
/// of evidence — with the first ion on the m/z-sorted ladder claiming the
/// bin (first-hit wins; see IonLadder). Every overload funnels through the
/// blocked ladder kernel (scoring/kernel.hpp), so stats are bit-identical
/// whether the caller passes a peptide, its ions, or a prebuilt ladder.
PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const std::vector<FragmentIon>& ions);

/// The ladder form the engine's hot loops call (ladder built once per
/// candidate in the fragment workspace, reused across queries).
PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const IonLadder& ladder);

/// Convenience: match `peptide`'s ions (no PTM deltas) against `query`.
PeakMatchStats match_peptide(const BinnedSpectrum& query,
                             std::string_view peptide);

/// Plain shared-peak count (= matched_b + matched_y) over a prebuilt ladder
/// — the primary form: the engine builds each candidate's ladder once and
/// reuses it across every matching query, prefilter screen, and vote gate.
std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const IonLadder& ladder);

/// Over precomputed ions (builds a ladder on the query's bin grid).
std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const std::vector<FragmentIon>& ions);

/// Convenience: count `peptide`'s ions directly (builds them afresh).
std::size_t shared_peak_count(const BinnedSpectrum& query,
                              std::string_view peptide);

}  // namespace msp
