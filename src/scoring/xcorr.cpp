#include "scoring/xcorr.hpp"

#include <cstddef>

#include "scoring/kernel.hpp"
#include "util/error.hpp"

namespace msp {

XcorrContext::XcorrContext(const BinnedSpectrum& binned, int half_window)
    : half_window_(half_window) {
  MSP_CHECK_MSG(half_window >= 1, "xcorr half window must be >= 1");
  const std::vector<float>& x = binned.intensities();
  const std::size_t n = x.size();
  weights_.resize(n);
  if (n == 0) return;
  // Sliding background window: one running sum updated per bin instead of
  // 151 passes. Accumulated in double so the stored float weights do not
  // depend on summation round-off order across bins.
  const auto h = static_cast<std::size_t>(half_window);
  const double inv = 1.0 / (2.0 * static_cast<double>(half_window));
  double window = 0.0;
  for (std::size_t j = 0; j < n && j <= h; ++j) window += x[j];
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      if (i + h < n) window += x[i + h];
      if (i >= h + 1) window -= x[i - h - 1];
    }
    weights_[i] =
        static_cast<float>(static_cast<double>(x[i]) -
                           (window - static_cast<double>(x[i])) * inv);
  }
}

double xcorr(const XcorrContext& context, const IonLadder& ladder) {
  return ladder_dot(context.weights(), ladder);
}

double xcorr_reference(const BinnedSpectrum& binned,
                       const std::vector<FragmentIon>& ions, int half_window) {
  MSP_CHECK_MSG(half_window >= 1, "xcorr half window must be >= 1");
  // The same deduplicated unit ladder the fast path scores (two ions in one
  // bin are one piece of evidence under every model, Xcorr included).
  IonLadder ladder;
  build_ion_ladder(ions, binned.bin_width(), ladder);
  const std::vector<float>& x = binned.intensities();
  const auto n = static_cast<std::int64_t>(x.size());
  double at_zero = 0.0;
  double shifted_total = 0.0;
  for (std::size_t entry = 0; entry < ladder.size; ++entry) {
    const std::int64_t bin = ladder.bins[entry];
    if (bin < 0 || bin >= n) continue;
    at_zero += x[static_cast<std::size_t>(bin)];
    for (int tau = -half_window; tau <= half_window; ++tau) {
      if (tau == 0) continue;
      const std::int64_t j = bin + tau;
      if (j >= 0 && j < n) shifted_total += x[static_cast<std::size_t>(j)];
    }
  }
  return at_zero - shifted_total / (2.0 * static_cast<double>(half_window));
}

}  // namespace msp
