// SEQUEST-style Xcorr scoring, in the fast single-pass formulation.
//
// Classic Xcorr is the cross-correlation of the query against the model
// spectrum at offset zero, minus the mean correlation over offsets
// τ = −75..+75 — the background term that made SEQUEST robust to broad
// noise. Computing 151 shifted dot products per candidate is hopeless in a
// kernel that scores millions of candidates; the standard fast formulation
// (Eng et al. 2008) folds the background into the *query* instead:
//
//   x'[i] = x[i] − (1/150) · Σ_{τ=−75..+75, τ≠0} x[i+τ]
//
// computed once per query with a sliding window (O(bins), blocked prefix
// accumulation — no per-offset pass), after which each candidate's score is
// a single dot product of x' against its unit-magnitude ion ladder — the
// same blocked gather kernel (ladder_dot) the match loop uses, so the SIMD
// and scalar backends stay bit-identical here too.
//
// Simplifications relative to SEQUEST's preprocessing (documented, not
// accidental): intensities are the binned per-bin maxima as-is (no sqrt or
// region normalization), and all theoretical ions carry unit weight. The
// score is a ranking statistic on the same footing as the hyperscore.
#pragma once

#include <span>
#include <vector>

#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

/// The ±bin half-window of the background mean (SEQUEST's 75).
inline constexpr int kXcorrHalfWindow = 75;

/// Per-query Xcorr preprocessing: the background-corrected weight vector
/// x' over the query's bin grid. Built once per query (QueryContext owns
/// one when the engine runs under ScoreModel::kXcorr); scoring a candidate
/// is then ladder_dot(weights(), ladder).
class XcorrContext {
 public:
  XcorrContext() = default;
  explicit XcorrContext(const BinnedSpectrum& binned,
                        int half_window = kXcorrHalfWindow);

  std::span<const float> weights() const { return weights_; }
  int half_window() const { return half_window_; }

 private:
  std::vector<float> weights_;
  int half_window_ = kXcorrHalfWindow;
};

/// The Xcorr score of a candidate's ladder against a preprocessed query.
/// Funnels through the blocked ladder_dot kernel: bit-identical between the
/// scalar and SIMD backends and between the engine and the oracle.
double xcorr(const XcorrContext& context, const IonLadder& ladder);

/// Naive reference: the explicit 151-offset correlation over the same
/// grid, quadratic per query. For tests only — xcorr() must agree with it
/// to floating-point tolerance on any input.
double xcorr_reference(const BinnedSpectrum& binned,
                       const std::vector<FragmentIon>& ions,
                       int half_window = kXcorrHalfWindow);

}  // namespace msp
