// X!Tandem-style hyperscore.
//
// The paper positions X!!Tandem's speed against MSPolygraph's accuracy: the
// "fairly simple, fast statistical model" is the hyperscore —
//   dot(matched intensities) × (#matched b)! × (#matched y)!
// reported in log10 form. We implement it as the fast baseline so ablation
// benches can quantify the accuracy/speed trade the paper describes.
#pragma once

#include <string_view>

#include "scoring/shared_peak.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

/// log10 hyperscore over a prebuilt ion ladder — the form the engine's
/// blocked kernel calls (ladder built once per candidate, reused across
/// every matching query). Returns kHyperscoreFloor when nothing matches.
double hyperscore(const BinnedSpectrum& query, const IonLadder& ladder);

/// Over precomputed ions (builds a ladder on the query's bin grid; scores
/// bit-identical to the ladder form).
double hyperscore(const BinnedSpectrum& query,
                  const std::vector<FragmentIon>& ions);

/// Convenience: score `peptide` directly (builds its ions afresh).
double hyperscore(const BinnedSpectrum& query, std::string_view peptide);

inline constexpr double kHyperscoreFloor = -1e9;

}  // namespace msp
