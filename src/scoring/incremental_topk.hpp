// Streamed per-shard top-τ accumulation for the online service.
//
// A one-shot search offers every candidate of every shard to one TopK; the
// service instead scores a query's shards one ring step at a time, in
// whatever order the rotation (and any crash recovery) delivers them, and
// must publish the moment the last shard lands. This wrapper absorbs one
// partial top-τ list per shard and exposes completion; because TopK's total
// order (score desc, tie-key asc) makes the bounded list a function of the
// candidate *set* — any global top-τ entry is necessarily inside its own
// shard's top-τ — the finalized list is bit-identical to the one-shot
// result for every absorption order. tests/serve_test.cpp holds that
// property over random orders and fault schedules.
#pragma once

#include <cstddef>
#include <vector>

#include "scoring/top_hits.hpp"
#include "util/error.hpp"

namespace msp {

template <typename Entry>
class IncrementalTopK {
 public:
  /// `shard_count` shards must each be absorbed exactly once before the
  /// result can be finalized.
  IncrementalTopK(std::size_t capacity, std::size_t shard_count)
      : running_(capacity), seen_(shard_count, false) {}

  /// Merge shard `shard`'s partial top-τ list (entries from that shard
  /// only, any capacity >= this one's effective need).
  void absorb(std::size_t shard, const TopK<Entry>& partial) {
    MSP_CHECK_MSG(shard < seen_.size(), "shard id out of range");
    MSP_CHECK_MSG(!seen_[shard], "shard absorbed twice");
    seen_[shard] = true;
    ++absorbed_;
    running_.merge(partial);
  }

  /// Record that shard `shard` provably contributes nothing (the mass
  /// router's skip): counts toward completion without merging — identical
  /// to absorbing an empty partial list.
  void skip(std::size_t shard) {
    MSP_CHECK_MSG(shard < seen_.size(), "shard id out of range");
    MSP_CHECK_MSG(!seen_[shard], "shard absorbed twice");
    seen_[shard] = true;
    ++absorbed_;
  }

  std::size_t absorbed() const { return absorbed_; }
  std::size_t shard_count() const { return seen_.size(); }
  bool complete() const { return absorbed_ == seen_.size(); }

  /// The running list (inspectable before completion, e.g. for cutoffs).
  const TopK<Entry>& top() const { return running_; }

  /// Best-first final list; requires every shard to have been absorbed.
  std::vector<Entry> finalize() const {
    MSP_CHECK_MSG(complete(), "finalize before every shard was absorbed");
    return running_.sorted();
  }

 private:
  TopK<Entry> running_;
  std::vector<bool> seen_;
  std::size_t absorbed_ = 0;
};

}  // namespace msp
