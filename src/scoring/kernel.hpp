// The blocked ion-ladder scoring kernel — the hot loop every score model
// funnels through.
//
// A candidate's ions are pre-binned into an IonLadder (SoA int32 bins,
// deduplicated per bin, padded to kLadderBlock lanes); matching against a
// query is then a blocked gather over the query's binned intensities with a
// per-block bitmask of matched lanes — no floating-point division per ion,
// no branch per ion type. Two backends implement the identical canonical
// semantics:
//
//  - scalar: portable C++, always compiled — the configure-time fallback
//    (cmake -DMSPAR_SIMD=OFF builds only this one).
//  - simd:   GNU vector extensions (GCC/Clang), compiled when MSPAR_SIMD is
//    on; vectorizes the in-range test and the match compare, and skips
//    all-miss blocks wholesale.
//
// Bit-identity contract: both backends perform every floating-point
// accumulation in the same canonical order — ascending ladder-entry order
// over matched lanes — on the same values, so scores are bit-identical
// between backends by construction (integer counts are order-free; the SIMD
// lanes only decide *which* lanes contribute, never the order they are
// summed in). The engine's oracle tests then extend that identity to hits.
//
// The active backend is a process-global switch (kAuto = simd when
// compiled): benches and the scalar/SIMD property tests flip it at runtime
// so one binary can measure and compare both paths.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "scoring/shared_peak.hpp"
#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

enum class ScoringBackend : unsigned char {
  kAuto,    ///< simd when compiled in, else scalar (the default)
  kScalar,  ///< force the portable fallback
  kSimd,    ///< force the vectorized kernel (throws if not compiled)
};

/// True when the vectorized kernel was compiled in (MSPAR_SIMD).
bool simd_compiled();

/// Select the backend process-wide. Throws InvalidArgument for kSimd in a
/// scalar-only build. Safe to call between searches; not synchronized with
/// concurrently running kernels (flip it only while no search is active).
void set_scoring_backend(ScoringBackend backend);
ScoringBackend scoring_backend();

/// The backend the next kernel call will actually run (kAuto resolved).
ScoringBackend active_scoring_backend();

/// Match a candidate's ladder against the query's binned intensities:
/// matched_b / matched_y count *distinct* matched bins (classified by the
/// ion that claimed the bin), total_ions is the pre-dedup ion count, and
/// matched_intensity sums the matched bins' intensities in ascending-bin
/// order. When `matched_out` is non-null it is cleared and filled with the
/// matched intensities in that same order (the likelihood model's per-match
/// evidence terms need the individual values).
PeakMatchStats match_ladder(const BinnedSpectrum& query,
                            const IonLadder& ladder,
                            std::vector<float>* matched_out = nullptr);

/// Dot product of a per-bin weight vector against the ladder: sums
/// weights[bin] over in-grid ladder bins in ascending order (the Xcorr
/// score's inner loop; weights may be negative).
double ladder_dot(std::span<const float> weights, const IonLadder& ladder);

/// Backend-explicit forms, for the bit-identity property tests and benches.
PeakMatchStats match_ladder_scalar(const BinnedSpectrum& query,
                                   const IonLadder& ladder,
                                   std::vector<float>* matched_out = nullptr);
PeakMatchStats match_ladder_simd(const BinnedSpectrum& query,
                                 const IonLadder& ladder,
                                 std::vector<float>* matched_out = nullptr);
double ladder_dot_scalar(std::span<const float> weights,
                         const IonLadder& ladder);
double ladder_dot_simd(std::span<const float> weights, const IonLadder& ladder);

}  // namespace msp
