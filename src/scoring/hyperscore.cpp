#include "scoring/hyperscore.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "scoring/kernel.hpp"

namespace msp {
namespace {

/// log10(n!) via lgamma — exact enough for scores, no overflow. Uses the
/// re-entrant lgamma_r: std::lgamma writes the global signgam on POSIX,
/// which is a data race when the kernel fans out over threads. Small n —
/// every realistic matched-ion count — comes from a table initialized with
/// the identical computation, so cached and uncached values are the same
/// bits and the hot path pays one load instead of an lgamma call.
double log10_factorial_uncached(std::size_t n) {
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign) / std::numbers::ln10;
}

double log10_factorial(std::size_t n) {
  static const auto table = [] {
    std::array<double, 256> values{};
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = log10_factorial_uncached(i);
    return values;
  }();
  return n < table.size() ? table[n] : log10_factorial_uncached(n);
}

double hyperscore_from_stats(const PeakMatchStats& stats) {
  if (stats.matched_intensity <= 0.0) return kHyperscoreFloor;
  return std::log10(stats.matched_intensity) +
         log10_factorial(stats.matched_b) + log10_factorial(stats.matched_y);
}

}  // namespace

double hyperscore(const BinnedSpectrum& query, const IonLadder& ladder) {
  return hyperscore_from_stats(match_ladder(query, ladder));
}

double hyperscore(const BinnedSpectrum& query,
                  const std::vector<FragmentIon>& ions) {
  return hyperscore_from_stats(match_peaks(query, ions));
}

double hyperscore(const BinnedSpectrum& query, std::string_view peptide) {
  return hyperscore(query, fragment_ions(peptide));
}

}  // namespace msp
