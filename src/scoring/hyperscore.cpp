#include "scoring/hyperscore.hpp"

#include <cmath>
#include <numbers>

namespace msp {
namespace {

/// log10(n!) via lgamma — exact enough for scores, no overflow. Uses the
/// re-entrant lgamma_r: std::lgamma writes the global signgam on POSIX,
/// which is a data race when the kernel fans out over threads.
double log10_factorial(std::size_t n) {
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign) / std::numbers::ln10;
}

}  // namespace

double hyperscore(const BinnedSpectrum& query,
                  const std::vector<FragmentIon>& ions) {
  const PeakMatchStats stats = match_peaks(query, ions);
  if (stats.matched_intensity <= 0.0) return kHyperscoreFloor;
  return std::log10(stats.matched_intensity) +
         log10_factorial(stats.matched_b) + log10_factorial(stats.matched_y);
}

double hyperscore(const BinnedSpectrum& query, std::string_view peptide) {
  return hyperscore(query, fragment_ions(peptide));
}

}  // namespace msp
