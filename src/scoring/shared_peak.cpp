#include "scoring/shared_peak.hpp"

#include "scoring/kernel.hpp"

namespace msp {

namespace {

/// Scratch ladder for the ions/string conveniences, so they score through
/// the exact kernel the engine's prebuilt-ladder path uses (bit-identity
/// between the overloads) without a heap allocation per call.
IonLadder& scratch_ladder(const std::vector<FragmentIon>& ions,
                          double bin_width) {
  static thread_local IonLadder ladder;
  build_ion_ladder(ions, bin_width, ladder);
  return ladder;
}

}  // namespace

PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const IonLadder& ladder) {
  return match_ladder(query, ladder);
}

PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const std::vector<FragmentIon>& ions) {
  return match_ladder(query, scratch_ladder(ions, query.bin_width()));
}

PeakMatchStats match_peptide(const BinnedSpectrum& query,
                             std::string_view peptide) {
  return match_peaks(query, fragment_ions(peptide));
}

std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const IonLadder& ladder) {
  const PeakMatchStats stats = match_ladder(query, ladder);
  return stats.matched_b + stats.matched_y;
}

std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const std::vector<FragmentIon>& ions) {
  return shared_peak_count(query, scratch_ladder(ions, query.bin_width()));
}

std::size_t shared_peak_count(const BinnedSpectrum& query,
                              std::string_view peptide) {
  return shared_peak_count(query, fragment_ions(peptide));
}

}  // namespace msp
