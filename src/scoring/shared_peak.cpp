#include "scoring/shared_peak.hpp"

namespace msp {

PeakMatchStats match_peaks(const BinnedSpectrum& query,
                           const std::vector<FragmentIon>& ions) {
  PeakMatchStats stats;
  stats.total_ions = ions.size();
  for (const FragmentIon& ion : ions) {
    const double intensity = query.intensity_at(ion.mz);
    if (intensity <= 0.0) continue;
    if (ion.type == FragmentIon::Type::kB)
      ++stats.matched_b;
    else
      ++stats.matched_y;
    stats.matched_intensity += intensity;
  }
  return stats;
}

PeakMatchStats match_peptide(const BinnedSpectrum& query,
                             std::string_view peptide) {
  return match_peaks(query, fragment_ions(peptide));
}

std::size_t shared_peak_count(const BinnedSpectrum& query,
                              const std::vector<FragmentIon>& ions) {
  const PeakMatchStats stats = match_peaks(query, ions);
  return stats.matched_b + stats.matched_y;
}

std::size_t shared_peak_count(const BinnedSpectrum& query,
                              std::string_view peptide) {
  return shared_peak_count(query, fragment_ions(peptide));
}

}  // namespace msp
