// Bounded top-τ hit list.
//
// Step A2 of the paper: "Pi keeps a separate running list of the τ topmost
// hits for every query in Qi". The list must merge across the p ring
// iterations and — crucially for validation — must produce the *same* final
// list regardless of the order candidates were seen in, so Algorithm A at
// any p, Algorithm B, the master–worker baseline and the serial engine can
// be compared hit-for-hit. That requires a total order: score descending,
// then a caller-supplied tie-break key ascending.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace msp {

/// Entry must expose `double score` and `Key tie_key() const` where Key is
/// totally ordered. Smaller tie_key wins among equal scores.
template <typename Entry>
class TopK {
 public:
  explicit TopK(std::size_t capacity) : capacity_(capacity) {
    MSP_CHECK_MSG(capacity >= 1, "top-k capacity must be >= 1");
  }

  static bool better(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tie_key() < b.tie_key();
  }

  /// Offer a candidate; keeps the best `capacity` seen so far.
  void offer(const Entry& entry) {
    if (heap_.size() < capacity_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), better);  // min-heap
      return;
    }
    // heap_.front() is the *worst* retained entry.
    if (!better(entry, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), better);
    heap_.back() = entry;
    std::push_heap(heap_.begin(), heap_.end(), better);
  }

  /// Merge another list built with the same capacity (ring-iteration merge).
  void merge(const TopK& other) {
    for (const Entry& entry : other.heap_) offer(entry);
  }

  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Entries best-first; deterministic under the total order.
  std::vector<Entry> sorted() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end(), better);
    return out;
  }

  /// The worst score that still makes the list (-inf semantics: callers
  /// should check full() first).
  double cutoff() const {
    MSP_CHECK(!heap_.empty());
    return heap_.front().score;
  }
  bool full() const { return heap_.size() == capacity_; }

 private:
  std::size_t capacity_;
  std::vector<Entry> heap_;  // min-heap: front = worst retained
};

}  // namespace msp
