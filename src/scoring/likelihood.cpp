#include "scoring/likelihood.hpp"

#include <algorithm>
#include <cmath>

#include "scoring/kernel.hpp"
#include "util/error.hpp"

namespace msp {

QueryContext::QueryContext(const Spectrum& spectrum, double bin_width,
                           const LikelihoodModel& model)
    : binned_(spectrum, bin_width),
      model_(model),
      parent_mass_(spectrum.parent_mass()) {
  MSP_CHECK_MSG(model.detection_rate > 0.0 && model.detection_rate < 1.0,
                "detection rate must be in (0,1)");
  // p0: occupied-bin density over the spectrum's own m/z span, i.e. the
  // probability that an arbitrary fragment m/z coincides with some query
  // peak purely by chance.
  const double span_bins =
      spectrum.empty()
          ? 1.0
          : std::max(1.0, (spectrum.max_mz() - spectrum.min_mz()) / bin_width);
  const double density =
      static_cast<double>(binned_.peak_bin_count()) / span_bins;
  background_ = std::clamp(density, model.min_background, model.max_background);

  double total = 0.0;
  std::size_t occupied = 0;
  for (float value : binned_.intensities()) {
    if (value > 0.0f) {
      total += value;
      ++occupied;
    }
  }
  mean_intensity_ = occupied == 0 ? 1.0 : total / static_cast<double>(occupied);
}

double likelihood_ratio(const QueryContext& query, const IonLadder& ladder) {
  const LikelihoodModel& model = query.model();
  const double p1 = model.detection_rate;
  const double p0 = query.background_rate();
  const double log_match = std::log(p1 / p0);
  const double log_miss = std::log((1.0 - p1) / (1.0 - p0));
  const double inv_mean = 1.0 / query.mean_intensity();

  // One Bernoulli trial per *distinct* ion bin: the blocked kernel returns
  // the matched bins' intensities in ascending-bin order (the canonical
  // accumulation order — identical for the scalar and SIMD backends), and
  // the unmatched trials collapse into one multiply.
  static thread_local std::vector<float> matched;
  const PeakMatchStats stats = match_ladder(query.binned(), ladder, &matched);
  double llr = 0.0;
  for (const float intensity : matched)
    llr += log_match + std::log1p(static_cast<double>(intensity) * inv_mean);
  const std::size_t matches = stats.matched_b + stats.matched_y;
  llr += static_cast<double>(ladder.size - matches) * log_miss;
  return llr;
}

double likelihood_ratio(const QueryContext& query,
                        const std::vector<FragmentIon>& ions) {
  static thread_local IonLadder ladder;
  build_ion_ladder(ions, query.binned().bin_width(), ladder);
  return likelihood_ratio(query, ladder);
}

double likelihood_ratio(const QueryContext& query, std::string_view peptide) {
  return likelihood_ratio(query, fragment_ions(peptide));
}

double likelihood_ratio_library(const QueryContext& query,
                                const Spectrum& library_spectrum) {
  const LikelihoodModel& model = query.model();
  const double p1 = model.detection_rate;
  const double p0 = query.background_rate();
  const double log_match = std::log(p1 / p0);
  const double log_miss = std::log((1.0 - p1) / (1.0 - p0));
  const double inv_mean = 1.0 / query.mean_intensity();

  // Weight each expected peak by its consensus intensity (normalized to
  // mean 1 so library and model scores stay on one scale).
  double library_mean = 0.0;
  for (const Peak& peak : library_spectrum.peaks())
    library_mean += peak.intensity;
  if (library_spectrum.empty()) return 0.0;
  library_mean /= static_cast<double>(library_spectrum.size());
  if (library_mean <= 0.0) return 0.0;

  double llr = 0.0;
  for (const Peak& expected : library_spectrum.peaks()) {
    // Clamp the diagnostic weight: without a cap, one strong library peak
    // missing from a noisy query (dropout!) would swamp all other evidence
    // and put the library score on a different scale than the model score.
    const double weight =
        std::clamp(expected.intensity / library_mean, 0.25, 4.0);
    const double observed = query.binned().intensity_at(expected.mz);
    if (observed > 0.0) {
      llr += weight * (log_match + std::log1p(observed * inv_mean));
    } else {
      llr += weight * log_miss;
    }
  }
  return llr;
}

}  // namespace msp
