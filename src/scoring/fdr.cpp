#include "scoring/fdr.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {

ProteinDatabase make_decoy_database(const ProteinDatabase& db,
                                    const std::string& prefix) {
  ProteinDatabase decoys;
  decoys.proteins.reserve(db.proteins.size());
  for (const Protein& protein : db.proteins) {
    Protein decoy;
    decoy.id = prefix + protein.id;
    decoy.residues.assign(protein.residues.rbegin(), protein.residues.rend());
    decoys.proteins.push_back(std::move(decoy));
  }
  return decoys;
}

ProteinDatabase concatenate(const ProteinDatabase& targets,
                            const ProteinDatabase& decoys) {
  ProteinDatabase combined;
  combined.proteins.reserve(targets.proteins.size() + decoys.proteins.size());
  combined.proteins.insert(combined.proteins.end(), targets.proteins.begin(),
                           targets.proteins.end());
  combined.proteins.insert(combined.proteins.end(), decoys.proteins.begin(),
                           decoys.proteins.end());
  return combined;
}

bool is_decoy_id(const std::string& protein_id, const std::string& prefix) {
  return starts_with(protein_id, prefix);
}

std::vector<double> estimate_q_values(const std::vector<Psm>& psms) {
  // Sort indices by score descending (ties: decoys first — conservative).
  std::vector<std::size_t> order(psms.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (psms[a].score != psms[b].score) return psms[a].score > psms[b].score;
    return psms[a].decoy > psms[b].decoy;
  });

  // Walk best→worst accumulating counts; FDR(s) with +1 correction.
  std::vector<double> fdr_at(psms.size(), 1.0);
  std::size_t targets_seen = 0;
  std::size_t decoys_seen = 0;
  for (std::size_t position = 0; position < order.size(); ++position) {
    const Psm& psm = psms[order[position]];
    if (psm.decoy)
      ++decoys_seen;
    else
      ++targets_seen;
    fdr_at[position] =
        static_cast<double>(decoys_seen + 1) /
        static_cast<double>(std::max<std::size_t>(1, targets_seen));
  }
  // q-value: minimum FDR at or below this rank (monotone from the back).
  double running_min = 1.0;
  std::vector<double> q_sorted(psms.size(), 1.0);
  for (std::size_t position = order.size(); position-- > 0;) {
    running_min = std::min(running_min, fdr_at[position]);
    q_sorted[position] = std::min(1.0, running_min);
  }

  std::vector<double> q(psms.size(), 1.0);
  for (std::size_t position = 0; position < order.size(); ++position) {
    const std::size_t index = order[position];
    q[index] = psms[index].decoy ? 1.0 : q_sorted[position];
  }
  return q;
}

std::size_t accepted_at(const std::vector<Psm>& psms, double q_threshold) {
  MSP_CHECK_MSG(q_threshold >= 0.0 && q_threshold <= 1.0,
                "q threshold must be in [0,1]");
  const std::vector<double> q = estimate_q_values(psms);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < psms.size(); ++i)
    if (!psms[i].decoy && q[i] <= q_threshold) ++accepted;
  return accepted;
}

}  // namespace msp
