// Likelihood-ratio scoring (the MSPolygraph statistical model).
//
// Cannon et al. 2005 compare, for each candidate, the probability of the
// observed spectrum under (H1) "the candidate generated it" against (H0)
// "a random peptide of the same parent mass generated it", and report the
// log-likelihood ratio; a hit requires the ratio to clear a cutoff
// (Section II-A of the ICPP paper). We realize that with a per-ion Bernoulli
// match model:
//
//   H1: each theoretical ion of the candidate is observed (lands in an
//       occupied query bin) with probability p1 (instrument detection rate).
//   H0: a random peptide's ion lands in an occupied bin with probability
//       p0 = (occupied bins / bins in the query's m/z span) — the chance
//       alignment rate actually measured from this query's peak density.
//
//   LLR = Σ_ions [ matched · ln(p1/p0) + (1-matched) · ln((1-p1)/(1-p0)) ]
//       + intensity evidence: matched peaks contribute ln(1 + I/I_mean),
//         since true fragment peaks are systematically more intense than
//         chance matches.
//
// This is deliberately heavier per candidate than the hyperscore — the
// paper's whole premise is that the accurate model costs more compute and
// therefore *needs* the parallel machinery.
#pragma once

#include <optional>
#include <string_view>

#include "scoring/shared_peak.hpp"
#include "scoring/xcorr.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct LikelihoodModel {
  double detection_rate = 0.75;  ///< p1: P(true fragment ion observed)
  double min_background = 1e-4;  ///< clamp for p0 on sparse spectra
  double max_background = 0.5;   ///< clamp for p0 on dense spectra
};

/// Per-query precomputation shared across all of its candidates: the binned
/// form plus the background match probability p0 and mean bin intensity.
class QueryContext {
 public:
  explicit QueryContext(const Spectrum& spectrum,
                        double bin_width = kDefaultBinWidth,
                        const LikelihoodModel& model = {});

  const BinnedSpectrum& binned() const { return binned_; }
  double background_rate() const { return background_; }
  double mean_intensity() const { return mean_intensity_; }
  double parent_mass() const { return parent_mass_; }
  const LikelihoodModel& model() const { return model_; }

  /// Build the Xcorr preprocessing (idempotent). The engine calls this in
  /// prepare() when its config runs ScoreModel::kXcorr, so every driver and
  /// the serve path share one per-query build.
  void enable_xcorr() {
    if (!xcorr_) xcorr_.emplace(binned_);
  }
  /// Null until enable_xcorr(); scoring under kXcorr requires it.
  const XcorrContext* xcorr() const { return xcorr_ ? &*xcorr_ : nullptr; }

 private:
  BinnedSpectrum binned_;
  LikelihoodModel model_;
  double background_ = 0.0;
  double mean_intensity_ = 0.0;
  double parent_mass_ = 0.0;
  std::optional<XcorrContext> xcorr_;
};

/// Log-likelihood ratio of the candidate vs. the random-peptide null. The
/// ladder form is primary (the engine builds each candidate's ladder once
/// and reuses it across every matching query); evidence is counted per
/// *distinct* ion bin — matched bins contribute the match term plus the
/// intensity evidence in ascending-bin order, unmatched bins the miss term
/// — so a duplicate-bin ladder cannot double-count one query peak. The ions
/// and string overloads funnel through the same kernel (bit-identical).
double likelihood_ratio(const QueryContext& query, const IonLadder& ladder);
double likelihood_ratio(const QueryContext& query,
                        const std::vector<FragmentIon>& ions);
double likelihood_ratio(const QueryContext& query, std::string_view peptide);

/// Library variant (MSPolygraph's hybrid mode): score against a measured
/// consensus spectrum instead of the idealized b/y model. Each library
/// peak acts as an expected ion weighted by its consensus intensity —
/// strong, reproducible fragments are more diagnostic than weak ones,
/// which is exactly the accuracy edge libraries give.
double likelihood_ratio_library(const QueryContext& query,
                                const Spectrum& library_spectrum);

}  // namespace msp
