#include "scoring/kernel.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "util/error.hpp"

// The vectorized backend uses GNU vector extensions (GCC and Clang); a
// scalar-only build (cmake -DMSPAR_SIMD=OFF, or a compiler without the
// extension) simply never defines MSPAR_SIMD_COMPILED.
#if defined(MSPAR_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define MSPAR_SIMD_COMPILED 1
#endif

namespace msp {

namespace {

std::atomic<ScoringBackend> g_backend{ScoringBackend::kAuto};

/// Clamp the query's bin count to the int32 domain the ladder bins live in.
std::int32_t bin_limit(std::size_t bins) {
  constexpr auto kMax =
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  return static_cast<std::int32_t>(bins < kMax ? bins : kMax);
}

/// Fold one block's matched lanes into the stats — the single accumulation
/// site both backends share, so the canonical order (ascending lanes, i.e.
/// ascending bins) is identical by construction. `match_bits` has bit l set
/// when lane l matched; `values[l]` is that lane's bin intensity.
inline void fold_matches(std::uint32_t match_bits, const float* values,
                         std::uint8_t y_bits, PeakMatchStats& stats,
                         std::vector<float>* matched_out) {
  const auto matched = static_cast<std::size_t>(std::popcount(match_bits));
  const auto matched_y = static_cast<std::size_t>(
      std::popcount(match_bits & static_cast<std::uint32_t>(y_bits)));
  stats.matched_y += matched_y;
  stats.matched_b += matched - matched_y;
  for (std::uint32_t bits = match_bits; bits != 0; bits &= bits - 1) {
    const int lane = std::countr_zero(bits);
    stats.matched_intensity += values[lane];
    if (matched_out != nullptr) matched_out->push_back(values[lane]);
  }
}

}  // namespace

bool simd_compiled() {
#ifdef MSPAR_SIMD_COMPILED
  return true;
#else
  return false;
#endif
}

void set_scoring_backend(ScoringBackend backend) {
  if (backend == ScoringBackend::kSimd && !simd_compiled())
    throw InvalidArgument(
        "simd scoring backend requested but not compiled in (MSPAR_SIMD=OFF)");
  g_backend.store(backend, std::memory_order_relaxed);
}

ScoringBackend scoring_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

ScoringBackend active_scoring_backend() {
  const ScoringBackend backend = scoring_backend();
  if (backend != ScoringBackend::kAuto) return backend;
  return simd_compiled() ? ScoringBackend::kSimd : ScoringBackend::kScalar;
}

PeakMatchStats match_ladder_scalar(const BinnedSpectrum& query,
                                   const IonLadder& ladder,
                                   std::vector<float>* matched_out) {
  PeakMatchStats stats;
  stats.total_ions = ladder.total_ions;
  if (matched_out != nullptr) matched_out->clear();
  const float* cells = query.intensities().data();
  const std::int32_t limit = bin_limit(query.bins());
  const std::int32_t* bins = ladder.bins.data();
  for (std::size_t block = 0; block < ladder.block_count(); ++block) {
    const std::int32_t* b = bins + block * kLadderBlock;
    // Bins ascend (padding only trails), so the first lane at or above the
    // grid limit means every remaining lane of every remaining block is out
    // of range too — identical early exit in every backend.
    if (b[0] >= limit) break;
    float values[kLadderBlock];
    std::uint32_t match_bits = 0;
    for (std::size_t lane = 0; lane < kLadderBlock; ++lane) {
      // Padding lanes carry kLadderPadBin (< 0) and fail the same test as
      // below-grid bins — no tail loop, no separate padding branch.
      const bool in_range = b[lane] >= 0 && b[lane] < limit;
      const float value =
          in_range ? cells[static_cast<std::uint32_t>(b[lane])] : 0.0f;
      values[lane] = value;
      if (value > 0.0f) match_bits |= 1u << lane;
    }
    if (match_bits == 0) continue;
    fold_matches(match_bits, values, ladder.y_mask[block], stats, matched_out);
  }
  return stats;
}

double ladder_dot_scalar(std::span<const float> weights,
                         const IonLadder& ladder) {
  const float* cells = weights.data();
  const std::int32_t limit = bin_limit(weights.size());
  const std::int32_t* bins = ladder.bins.data();
  double dot = 0.0;
  for (std::size_t block = 0; block < ladder.block_count(); ++block) {
    const std::int32_t* b = bins + block * kLadderBlock;
    if (b[0] >= limit) break;  // ascending bins: the rest is out of range
    for (std::size_t lane = 0; lane < kLadderBlock; ++lane) {
      if (b[lane] >= 0 && b[lane] < limit)
        dot += cells[static_cast<std::uint32_t>(b[lane])];
    }
  }
  return dot;
}

#ifdef MSPAR_SIMD_COMPILED

namespace {

typedef std::int32_t Vi32 __attribute__((vector_size(32)));
typedef std::uint32_t Vu32 __attribute__((vector_size(32)));
typedef float Vf32 __attribute__((vector_size(32)));

inline Vi32 load_bins(const std::int32_t* p) {
  Vi32 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Lane mask (-1/0 per lane) → an 8-bit bitmask, via a log2(lanes) shuffle
/// reduction (a per-lane scalar loop here would cost as much as the whole
/// scalar backend's block loop).
inline std::uint32_t movemask(Vi32 mask) {
  constexpr Vu32 kLaneBit = {1, 2, 4, 8, 16, 32, 64, 128};
  Vu32 m = reinterpret_cast<Vu32>(mask) & kLaneBit;
#if defined(__clang__)
  m |= __builtin_shufflevector(m, m, 4, 5, 6, 7, 0, 1, 2, 3);
  m |= __builtin_shufflevector(m, m, 2, 3, 0, 1, 6, 7, 4, 5);
  m |= __builtin_shufflevector(m, m, 1, 0, 3, 2, 5, 4, 7, 6);
#else
  m |= __builtin_shuffle(m, Vu32{4, 5, 6, 7, 0, 1, 2, 3});
  m |= __builtin_shuffle(m, Vu32{2, 3, 0, 1, 6, 7, 4, 5});
  m |= __builtin_shuffle(m, Vu32{1, 0, 3, 2, 5, 4, 7, 6});
#endif
  return m[0];
}

#if defined(__x86_64__)

/// Hardware-gather fast path: AVX2 gives a real 8-lane gather and a
/// one-instruction movemask, which is where the vector win actually lives
/// (the generic-vector path must gather lane-by-lane). Compiled via the
/// target attribute — the rest of the translation unit stays baseline — and
/// entered only when cpuid reports AVX2 at runtime, so the binary stays
/// portable. The fold is the same fold_matches as every other backend:
/// identical values, ascending lanes, bit-identical accumulation.
__attribute__((target("avx2"))) PeakMatchStats match_ladder_avx2(
    const BinnedSpectrum& query, const IonLadder& ladder,
    std::vector<float>* matched_out) {
  PeakMatchStats stats;
  stats.total_ions = ladder.total_ions;
  if (matched_out != nullptr) matched_out->clear();
  const float* cells = query.intensities().data();
  const __m256i zero = _mm256_setzero_si256();
  const __m256i limit = _mm256_set1_epi32(bin_limit(query.bins()));
  const __m256 zerof = _mm256_setzero_ps();
  const std::int32_t scalar_limit = bin_limit(query.bins());
  const std::int32_t* bins = ladder.bins.data();
  for (std::size_t block = 0; block < ladder.block_count(); ++block) {
    // Ascending bins: the same early exit as every other backend.
    if (bins[block * kLadderBlock] >= scalar_limit) break;
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bins + block * kLadderBlock));
    // in_range = b >= 0 && b < limit, as lane masks. There is no signed
    // compare-less-than, so express both sides with compare-greater-than.
    const __m256i in_range =
        _mm256_andnot_si256(_mm256_cmpgt_epi32(zero, b),
                            _mm256_cmpgt_epi32(limit, b));
    // Unmasked gather off a masked index: out-of-range lanes are redirected
    // to cell 0 (b & in_range) and their value is masked back to +0.0f — a
    // guaranteed miss. An unmasked gather beats the masked form here: the
    // mask register adds a dependency the gather has to wait on.
    const __m256 gathered = _mm256_i32gather_ps(
        cells, _mm256_and_si256(b, in_range), sizeof(float));
    const __m256 values =
        _mm256_and_ps(gathered, _mm256_castsi256_ps(in_range));
    const auto match_bits = static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(values, zerof, _CMP_GT_OQ)));
    if (match_bits == 0) continue;
    float lanes[kLadderBlock];
    _mm256_storeu_ps(lanes, values);
    fold_matches(match_bits, lanes, ladder.y_mask[block], stats, matched_out);
  }
  return stats;
}

bool cpu_has_avx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // __x86_64__

}  // namespace

PeakMatchStats match_ladder_simd(const BinnedSpectrum& query,
                                 const IonLadder& ladder,
                                 std::vector<float>* matched_out) {
#if defined(__x86_64__)
  if (cpu_has_avx2()) return match_ladder_avx2(query, ladder, matched_out);
#endif
  PeakMatchStats stats;
  stats.total_ions = ladder.total_ions;
  if (matched_out != nullptr) matched_out->clear();
  if (query.bins() == 0) return stats;  // no cells: the gather needs cell 0
  const float* cells = query.intensities().data();
  const std::int32_t scalar_limit = bin_limit(query.bins());
  const Vi32 zero = {};
  const Vi32 limit = zero + scalar_limit;
  const Vf32 zerof = {};
  const std::int32_t* bins = ladder.bins.data();
  for (std::size_t block = 0; block < ladder.block_count(); ++block) {
    if (bins[block * kLadderBlock] >= scalar_limit)
      break;  // ascending bins: the rest is out of range
    const Vi32 b = load_bins(bins + block * kLadderBlock);
    // One vector compare rejects padding and below-grid lanes (< 0) and
    // beyond-grid lanes (>= limit) together.
    const Vi32 in_range = (b >= zero) & (b < limit);
    // Branchless gather (generic vectors have no portable gather): every
    // lane reads a cell — out-of-range lanes are redirected to cell 0 by
    // the mask and their value is then masked back to +0.0f, so they can
    // never match regardless of what cell 0 holds. The lane loop runs over
    // plain arrays (vector element inserts round-trip through memory on
    // most targets anyway, so make that explicit and cheap).
    const Vi32 safe = b & in_range;
    std::int32_t safe_lanes[kLadderBlock];
    std::memcpy(safe_lanes, &safe, sizeof(safe_lanes));
    float gathered[kLadderBlock];
    for (std::size_t lane = 0; lane < kLadderBlock; ++lane)
      gathered[lane] = cells[static_cast<std::uint32_t>(safe_lanes[lane])];
    Vf32 values;
    std::memcpy(&values, gathered, sizeof(values));
    values = reinterpret_cast<Vf32>(reinterpret_cast<Vi32>(values) & in_range);
    const std::uint32_t match_bits = movemask(values > zerof);
    if (match_bits == 0) continue;
    // Same canonical fold as the scalar backend: ascending lanes, identical
    // values — bit-identical accumulation by construction.
    float lanes[kLadderBlock];
    std::memcpy(lanes, &values, sizeof(lanes));
    fold_matches(match_bits, lanes, ladder.y_mask[block], stats, matched_out);
  }
  return stats;
}

double ladder_dot_simd(std::span<const float> weights, const IonLadder& ladder) {
  if (weights.empty()) return 0.0;
  const float* cells = weights.data();
  const std::int32_t scalar_limit = bin_limit(weights.size());
  const Vi32 zero = {};
  const Vi32 limit = zero + scalar_limit;
  const std::int32_t* bins = ladder.bins.data();
  double dot = 0.0;
  for (std::size_t block = 0; block < ladder.block_count(); ++block) {
    if (bins[block * kLadderBlock] >= scalar_limit)
      break;  // ascending bins: the rest is out of range
    const Vi32 b = load_bins(bins + block * kLadderBlock);
    const std::uint32_t range_bits = movemask((b >= zero) & (b < limit));
    // In-grid lanes accumulate in ascending-lane order — the identical
    // sequence of additions the scalar backend performs (skipped lanes add
    // nothing there either), so the dot is bit-identical. The accumulation
    // itself stays scalar: a lane-parallel sum would reassociate the
    // doubles and break bit-identity with the scalar backend.
    for (std::uint32_t bits = range_bits; bits != 0; bits &= bits - 1) {
      const int lane = std::countr_zero(bits);
      dot += cells[static_cast<std::uint32_t>(b[lane])];
    }
  }
  return dot;
}

#else  // !MSPAR_SIMD_COMPILED

PeakMatchStats match_ladder_simd(const BinnedSpectrum&, const IonLadder&,
                                 std::vector<float>*) {
  throw InvalidArgument("simd scoring backend not compiled in");
}

double ladder_dot_simd(std::span<const float>, const IonLadder&) {
  throw InvalidArgument("simd scoring backend not compiled in");
}

#endif  // MSPAR_SIMD_COMPILED

PeakMatchStats match_ladder(const BinnedSpectrum& query, const IonLadder& ladder,
                            std::vector<float>* matched_out) {
  if (active_scoring_backend() == ScoringBackend::kSimd)
    return match_ladder_simd(query, ladder, matched_out);
  return match_ladder_scalar(query, ladder, matched_out);
}

double ladder_dot(std::span<const float> weights, const IonLadder& ladder) {
  if (active_scoring_backend() == ScoringBackend::kSimd)
    return ladder_dot_simd(weights, ladder);
  return ladder_dot_scalar(weights, ladder);
}

}  // namespace msp
