#include "denovo/spectrum_graph.hpp"

#include <algorithm>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp::denovo {

std::vector<Vertex> build_spectrum_graph(const Spectrum& spectrum,
                                         const GraphOptions& options) {
  MSP_CHECK_MSG(options.merge_tolerance_da > 0.0,
                "merge tolerance must be positive");
  const double parent_residue_mass = spectrum.parent_mass() - kWaterMass;
  MSP_CHECK_MSG(parent_residue_mass > 0.0,
                "parent mass too small for de novo interpretation");

  // Candidate vertices from both interpretations of every peak.
  struct Candidate {
    double prefix_mass;
    double evidence;
    bool via_y;
  };
  std::vector<Candidate> candidates;
  const double floor_intensity =
      spectrum.max_intensity() * options.min_relative_intensity;
  for (const Peak& peak : spectrum.peaks()) {
    if (peak.intensity < floor_intensity) continue;
    // b-ion: mz = prefix + proton.
    const double as_b = peak.mz - kProtonMass;
    // y-ion: mz = (T - prefix) + water + proton.
    const double as_y =
        parent_residue_mass - (peak.mz - kProtonMass - kWaterMass);
    for (bool via_y : {false, true}) {
      const double prefix = via_y ? as_y : as_b;
      if (prefix <= options.merge_tolerance_da ||
          prefix >= parent_residue_mass - options.merge_tolerance_da)
        continue;  // sentinel territory
      candidates.push_back({prefix, peak.intensity, via_y});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.prefix_mass < b.prefix_mass;
            });

  std::vector<Vertex> vertices;
  vertices.push_back(Vertex{0.0, 0.0, 0.0, 0});  // N-terminal sentinel
  for (const Candidate& candidate : candidates) {
    Vertex& last = vertices.back();
    if (last.supports > 0 && candidate.prefix_mass - last.prefix_mass <=
                                 options.merge_tolerance_da) {
      // Merge: weighted-mean position, summed evidence.
      const double total = last.evidence + candidate.evidence;
      last.prefix_mass = (last.prefix_mass * last.evidence +
                          candidate.prefix_mass * candidate.evidence) /
                         (total > 0.0 ? total : 1.0);
      last.evidence = total;
      if (candidate.via_y) last.y_evidence += candidate.evidence;
      ++last.supports;
    } else {
      vertices.push_back(Vertex{candidate.prefix_mass, candidate.evidence,
                                candidate.via_y ? candidate.evidence : 0.0, 1});
    }
  }
  vertices.push_back(Vertex{parent_residue_mass, 0.0, 0.0, 0});  // C sentinel
  return vertices;
}

}  // namespace msp::denovo
