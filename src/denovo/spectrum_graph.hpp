// Spectrum graph construction for de novo sequencing.
//
// The paper's related work (Section I-A) positions de novo identification
// [Dancik et al. 1999; Chen et al. 2001] as the database-free alternative,
// "traditionally handicapped by the large number of peaks that can be
// missing from an experimental spectrum". We implement the classic
// formulation so that handicap can be measured against database search.
//
// Construction: every peak admits two interpretations — as a b-ion (its
// m/z minus a proton is a prefix residue mass) or as a y-ion (the
// complementary prefix mass). Each interpretation becomes a graph vertex
// at its prefix residue mass in [0, T], T = parent residue mass; vertices
// closer than the merge tolerance coalesce (summing intensity evidence —
// complementary b/y pairs landing on one vertex corroborate each other).
// Sentinel vertices at 0 and T anchor the paths.
#pragma once

#include <cstdint>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp::denovo {

struct Vertex {
  double prefix_mass = 0.0;  ///< cumulative residue mass of the prefix
  double evidence = 0.0;     ///< summed intensity of supporting peaks
  double y_evidence = 0.0;   ///< the part arriving via y-ion interpretations;
                             ///  y-ions dominate tryptic CID spectra, so this
                             ///  split is what disambiguates a ladder from
                             ///  its reversed mirror image
  std::uint32_t supports = 0;  ///< number of peak interpretations merged
};

struct GraphOptions {
  /// Interpretations within this many daltons merge into one vertex.
  double merge_tolerance_da = 0.3;
  /// Peaks below this fraction of the maximum intensity are ignored.
  double min_relative_intensity = 0.01;
};

/// Vertices sorted by prefix mass; front() is the 0 sentinel, back() the
/// T sentinel. Throws InvalidArgument if the parent mass is non-positive.
std::vector<Vertex> build_spectrum_graph(const Spectrum& spectrum,
                                         const GraphOptions& options = {});

}  // namespace msp::denovo
