#include "denovo/sequencer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp::denovo {
namespace {

/// Residue whose mass matches `gap` within tolerance, or 0. Prefers the
/// closest match; I is reported as L (isobaric).
char residue_for_gap(double gap, double tolerance) {
  char best = 0;
  double best_error = tolerance;
  for (int i = 0; i < 20; ++i) {
    const char c = residue_from_index(i);
    if (c == 'I') continue;  // indistinguishable from L
    const double error = std::abs(residue_mass(c) - gap);
    if (error <= best_error) {
      best_error = error;
      best = c;
    }
  }
  return best;
}

/// Residue pair whose summed mass matches `gap`, or empty. Deterministic:
/// the lexicographically smallest closest pair wins.
std::string pair_for_gap(double gap, double tolerance) {
  std::string best;
  double best_error = tolerance;
  for (int i = 0; i < 20; ++i) {
    const char a = residue_from_index(i);
    if (a == 'I') continue;
    for (int j = i; j < 20; ++j) {
      const char b = residue_from_index(j);
      if (b == 'I') continue;
      const double error = std::abs(residue_mass(a) + residue_mass(b) - gap);
      if (error < best_error ||
          (error == best_error && !best.empty() && std::string{a, b} < best)) {
        best_error = error;
        best = {a, b};
      }
    }
  }
  return best;
}

std::string edge_for_gap(double gap, const SequencerOptions& options) {
  if (const char single = residue_for_gap(gap, options.gap_tolerance_da))
    return std::string(1, single);
  if (options.allow_two_residue_gaps)
    return pair_for_gap(gap, options.gap_tolerance_da);
  return {};
}

}  // namespace

// The anti-symmetric sandwich DP of Chen et al. 2001 (the paper's citation
// [6]). Every peak contributes TWO vertices — its b reading at prefix mass
// v and its y reading at S − v, S = parent residue mass + water — so the
// graph contains a mirrored copy of the true ladder, and a naive
// longest-path happily weaves between ladder and mirror (the "symmetric
// path" trap). Chen et al.'s remedy: grow a prefix path (from mass 0,
// rightward) and a suffix path (from mass T, leftward) simultaneously,
// adding vertices strictly outside-in (by distance from the S/2 center).
// Because a vertex and its mirror twin are equidistant from the center,
// the only twin a new vertex can conflict with is one of the two current
// path endpoints — an O(1) check that makes twin exclusion exact.
DeNovoResult sequence_peptide(const Spectrum& spectrum,
                              const SequencerOptions& options) {
  MSP_CHECK_MSG(options.gap_tolerance_da > 0.0,
                "gap tolerance must be positive");
  const std::vector<Vertex> vertices =
      build_spectrum_graph(spectrum, options.graph);
  const int n = static_cast<int>(vertices.size());
  const double total = vertices.back().prefix_mass;  // T
  const double symmetry = total + kWaterMass;        // S: twin(v) = S − v

  const double mean_intensity =
      spectrum.empty() ? 0.0
                       : spectrum.total_intensity() /
                             static_cast<double>(spectrum.size());
  const double vertex_penalty = options.vertex_penalty_rel * mean_intensity;

  // Twin index per vertex (−1 if its mirror is not in the graph).
  std::vector<int> twin(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    const double target =
        symmetry - vertices[static_cast<std::size_t>(v)].prefix_mass;
    for (int u = 0; u < n; ++u) {
      if (std::abs(vertices[static_cast<std::size_t>(u)].prefix_mass -
                   target) <= options.graph.merge_tolerance_da) {
        twin[static_cast<std::size_t>(v)] = u;
        break;
      }
    }
  }

  // Interior vertices processed outside-in.
  std::vector<int> order;
  for (int v = 1; v + 1 < n; ++v) order.push_back(v);
  const double center = symmetry / 2.0;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da =
        std::abs(vertices[static_cast<std::size_t>(a)].prefix_mass - center);
    const double db =
        std::abs(vertices[static_cast<std::size_t>(b)].prefix_mass - center);
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });

  // DP state: (left endpoint i, right endpoint j). Backpointers record the
  // processing step, previous state, and the residue string of the edge.
  struct Entry {
    double score = 0.0;
    int prev_i = -1, prev_j = -1;
    int prev_step = -1;
    std::string edge;
    bool extended_left = false;
  };
  // Ordered map: deterministic iteration makes score ties resolve the same
  // way on every run (first-encountered keeps the win).
  using StateMap = std::map<std::uint64_t, Entry>;
  auto key_of = [&](int i, int j) {
    return static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(j);
  };

  std::vector<StateMap> steps(order.size() + 1);
  steps[0][key_of(0, n - 1)] = Entry{};

  for (std::size_t s = 0; s < order.size(); ++s) {
    const int k = order[s];
    const Vertex& vertex = vertices[static_cast<std::size_t>(k)];
    const double vk = vertex.prefix_mass;
    const double gain =
        vertex.evidence - vertex_penalty +
        options.orientation_bonus *
            (2.0 * vertex.y_evidence - vertex.evidence);
    // Carry every state forward (skipping vertex k) ...
    steps[s + 1] = steps[s];
    // ... and try both extensions.
    for (const auto& [key, entry] : steps[s]) {
      const int i = static_cast<int>(key / static_cast<std::uint64_t>(n));
      const int j = static_cast<int>(key % static_cast<std::uint64_t>(n));
      const double vi = vertices[static_cast<std::size_t>(i)].prefix_mass;
      const double vj = vertices[static_cast<std::size_t>(j)].prefix_mass;
      if (vk <= vi || vk >= vj) continue;
      // Twin exclusion: the only possibly-used twin is an endpoint.
      if (twin[static_cast<std::size_t>(k)] == i ||
          twin[static_cast<std::size_t>(k)] == j)
        continue;
      // Extend the prefix path i → k.
      if (const std::string edge = edge_for_gap(vk - vi, options);
          !edge.empty()) {
        Entry candidate{entry.score + gain, i, j, static_cast<int>(s), edge,
                        true};
        auto [it, inserted] =
            steps[s + 1].try_emplace(key_of(k, j), candidate);
        if (!inserted && candidate.score > it->second.score)
          it->second = candidate;
      }
      // Extend the suffix path k → j.
      if (const std::string edge = edge_for_gap(vj - vk, options);
          !edge.empty()) {
        Entry candidate{entry.score + gain, i, j, static_cast<int>(s), edge,
                        false};
        auto [it, inserted] =
            steps[s + 1].try_emplace(key_of(i, k), candidate);
        if (!inserted && candidate.score > it->second.score)
          it->second = candidate;
      }
    }
  }

  // Close the sandwich: the endpoints must join by a final 1–2 residue edge.
  DeNovoResult result;
  double best_score = 0.0;
  std::uint64_t best_key = 0;
  std::string best_middle;
  bool found = false;
  for (const auto& [key, entry] : steps.back()) {
    const int i = static_cast<int>(key / static_cast<std::uint64_t>(n));
    const int j = static_cast<int>(key % static_cast<std::uint64_t>(n));
    const double gap = vertices[static_cast<std::size_t>(j)].prefix_mass -
                       vertices[static_cast<std::size_t>(i)].prefix_mass;
    const std::string middle = edge_for_gap(gap, options);
    if (middle.empty()) continue;
    if (!found || entry.score > best_score) {
      found = true;
      best_score = entry.score;
      best_key = key;
      best_middle = middle;
    }
  }
  if (!found) return result;

  // Reconstruct: walk backpointers from the final state.
  std::string prefix;              // left edges, chronological = N→C
  std::vector<std::string> suffix; // right edges, chronological = C→N
  std::uint64_t key = best_key;
  int step = static_cast<int>(order.size());
  std::size_t used = 2;  // sentinels
  while (step > 0) {
    const auto it = steps[static_cast<std::size_t>(step)].find(key);
    MSP_CHECK(it != steps[static_cast<std::size_t>(step)].end());
    const Entry& entry = it->second;
    if (entry.prev_step < 0) break;  // reached the initial state
    if (entry.extended_left)
      prefix.insert(0, entry.edge);  // walking backwards: prepend
    else
      suffix.push_back(entry.edge);
    ++used;
    key = key_of(entry.prev_i, entry.prev_j);
    step = entry.prev_step;
  }
  result.sequence = prefix + best_middle;
  for (const std::string& edge : suffix) result.sequence += edge;
  result.evidence = best_score;
  result.vertices_used = used;
  result.complete = true;
  return result;
}

double ladder_agreement(const std::string& inferred, const std::string& truth,
                        double tolerance_da) {
  if (truth.size() < 2) return inferred == truth ? 1.0 : 0.0;
  std::vector<double> truth_ladder;
  double running = 0.0;
  for (std::size_t i = 0; i + 1 < truth.size(); ++i) {
    running += residue_mass(truth[i]);
    truth_ladder.push_back(running);
  }
  std::vector<double> inferred_ladder;
  running = 0.0;
  for (std::size_t i = 0; i + 1 < inferred.size(); ++i) {
    running += residue_mass(inferred[i]);
    inferred_ladder.push_back(running);
  }
  std::size_t matched = 0;
  for (double target : truth_ladder) {
    for (double have : inferred_ladder) {
      if (std::abs(have - target) <= tolerance_da) {
        ++matched;
        break;
      }
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(truth_ladder.size());
}

}  // namespace msp::denovo
