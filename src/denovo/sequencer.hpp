// De novo peptide sequencing by dynamic programming over the spectrum
// graph — the Chen et al. 2001 formulation the paper cites [6]: find the
// highest-evidence path from the N-terminal sentinel to the C-terminal
// sentinel where consecutive vertices differ by the mass of one residue
// (or, to bridge a missing fragment peak, two residues).
#pragma once

#include <string>
#include <vector>

#include "denovo/spectrum_graph.hpp"
#include "spectra/spectrum.hpp"

namespace msp::denovo {

struct SequencerOptions {
  GraphOptions graph;
  /// Mass tolerance when matching a vertex gap to residue masses.
  double gap_tolerance_da = 0.3;
  /// Allow two-residue edges (bridges ONE missing peak between vertices);
  /// without this, any missing fragment breaks the path — the handicap the
  /// paper's related work describes, in its purest form.
  bool allow_two_residue_gaps = true;
  /// Per-vertex score penalty as a fraction of the spectrum's mean peak
  /// intensity. Raw evidence maximization would happily detour through
  /// low-intensity noise vertices (every visit adds *something*); charging
  /// each visited vertex this toll makes weak detours net-negative while
  /// genuine fragment peaks stay profitable.
  double vertex_penalty_rel = 0.5;
  /// Ion-series orientation prior: tryptic CID spectra are y-ion dominated,
  /// so a vertex whose evidence arrived mostly via y-interpretations is
  /// more likely a true prefix mass than the mirror-image reading. The
  /// bonus adds `orientation_bonus × (y_evidence − b_evidence)` per vertex,
  /// which is what separates the true ladder from its reversed twin (both
  /// have identical total evidence by construction).
  double orientation_bonus = 0.5;
};

struct DeNovoResult {
  /// Inferred sequence, N→C. 'L' stands for the I/L isobaric pair. Empty
  /// when no full path exists (unsequenceable spectrum).
  std::string sequence;
  double evidence = 0.0;       ///< summed vertex evidence along the path
  std::size_t vertices_used = 0;
  bool complete = false;       ///< a full 0→T path was found
};

/// Sequence one spectrum. Deterministic.
DeNovoResult sequence_peptide(const Spectrum& spectrum,
                              const SequencerOptions& options = {});

/// Agreement metric for evaluation: fraction of `truth`'s prefix masses
/// (b-ion ladder) that the inferred sequence reproduces within tolerance —
/// the standard way to score de novo output, robust to isobaric swaps.
double ladder_agreement(const std::string& inferred, const std::string& truth,
                        double tolerance_da = 0.5);

}  // namespace msp::denovo
