#include "dbgen/query_gen.hpp"

#include <algorithm>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

/// Pick a digestible peptide from a random protein; retries across proteins
/// because short proteins may yield no peptide in the length window. With
/// `anchored_only`, only peptides touching a sequence terminus qualify.
std::pair<std::string, std::uint32_t> sample_peptide(
    const ProteinDatabase& db, const DigestOptions& digest, bool anchored_only,
    Xoshiro256& rng) {
  MSP_CHECK_MSG(!db.proteins.empty(), "query source database is empty");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto index =
        static_cast<std::uint32_t>(rng.bounded(db.proteins.size()));
    const Protein& protein = db.proteins[index];
    auto peptides = digest_tryptic(protein.residues, digest);
    if (anchored_only) {
      std::erase_if(peptides, [&](const DigestedPeptide& peptide) {
        return peptide.offset != 0 &&
               peptide.offset + peptide.length != protein.residues.size();
      });
    }
    if (peptides.empty()) continue;
    const DigestedPeptide& chosen = peptides[rng.bounded(peptides.size())];
    return {peptide_string(protein.residues, chosen), index};
  }
  throw InvalidArgument(
      "could not sample a tryptic peptide after 1000 attempts; check digest "
      "length bounds vs. database sequence lengths");
}

void mutate_one_residue(std::string& peptide, Xoshiro256& rng) {
  const std::size_t pos = rng.bounded(peptide.size());
  char replacement = peptide[pos];
  while (replacement == peptide[pos])
    replacement = residue_from_index(static_cast<int>(rng.bounded(20)));
  peptide[pos] = replacement;
}

}  // namespace

std::vector<GeneratedQuery> generate_queries(
    const ProteinDatabase& source, const QueryGenOptions& options,
    const ProteinDatabase* decoy_source) {
  MSP_CHECK_MSG(
      options.mutation_fraction >= 0.0 && options.mutation_fraction <= 1.0,
      "mutation fraction must be in [0,1]");
  MSP_CHECK_MSG(
      options.foreign_fraction >= 0.0 && options.foreign_fraction <= 1.0,
      "foreign fraction must be in [0,1]");
  MSP_CHECK_MSG(options.foreign_fraction == 0.0 || decoy_source != nullptr,
                "foreign queries need a decoy source database");

  std::vector<GeneratedQuery> queries;
  queries.reserve(options.query_count);
  for (std::size_t i = 0; i < options.query_count; ++i) {
    Xoshiro256 rng(options.seed + 0x51ed2701ULL * (i + 1));
    GeneratedQuery query;
    query.foreign = decoy_source != nullptr &&
                    rng.uniform() < options.foreign_fraction;
    const ProteinDatabase& pool = query.foreign ? *decoy_source : source;
    auto [peptide, protein_index] =
        sample_peptide(pool, options.digest, options.anchored_only, rng);
    if (rng.uniform() < options.mutation_fraction)
      mutate_one_residue(peptide, rng);
    query.true_peptide = peptide;
    query.source_protein = protein_index;
    query.spectrum = simulate_spectrum(peptide, options.noise, rng,
                                       "query_" + std::to_string(i));
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<Spectrum> spectra_of(const std::vector<GeneratedQuery>& queries) {
  std::vector<Spectrum> spectra;
  spectra.reserve(queries.size());
  for (const GeneratedQuery& query : queries) spectra.push_back(query.spectrum);
  return spectra;
}

}  // namespace msp
