// Models behind Figure 1 of the paper.
//
// Fig. 1a plots NCBI GenBank's exponential base-pair growth 1988-2008;
// Fig. 1b plots how many candidate peptides must be evaluated per spectrum
// as the biological scope of the sample widens (known protein family →
// known genome → environmental community), further multiplied by PTMs.
// Neither figure is a measurement of the authors' cluster — both are
// data-context plots — so we reproduce them from models calibrated to the
// public figures they cite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msp {

struct GrowthPoint {
  int year = 0;
  double base_pairs = 0.0;  ///< GenBank nucleotide bases
  double sequences = 0.0;
};

/// GenBank growth 1988..last_year. Calibrated to the published release
/// notes: ~2.3e7 bases in 1988 doubling roughly every 18 months
/// (~1e11 by 2008).
std::vector<GrowthPoint> genbank_growth(int first_year = 1988,
                                        int last_year = 2008);

/// One bar of Fig. 1b: expected candidates per spectrum for a search scope.
struct CandidateMagnitude {
  std::string scope;          ///< e.g. "protein family"
  std::uint64_t database_residues = 0;
  std::uint64_t candidates_no_ptm = 0;
  std::uint64_t candidates_with_ptm = 0;
};

/// Expected number of prefix/suffix candidates per spectrum for a database
/// with `total_residues` residues and `avg_length` average sequence length,
/// under mass-window tolerance `tolerance_da`. Derivation: each sequence of
/// length L offers 2L fragment masses spread over its mass range; the
/// fraction landing in a ±tolerance window around a typical tryptic parent
/// mass follows from the fragment-mass density (~1 per avg residue mass Da
/// per terminal, per sequence).
double expected_candidates(std::uint64_t total_residues, double avg_length,
                           double tolerance_da);

/// The three scopes of Fig. 1b with PTM multipliers from the mass/ptm model.
std::vector<CandidateMagnitude> candidate_magnitudes(double tolerance_da = 3.0);

}  // namespace msp
