#include "dbgen/protein_gen.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

/// Cumulative residue frequency table for inverse-CDF sampling.
std::array<double, 20> cumulative_frequencies() {
  std::array<double, 20> cdf{};
  double running = 0.0;
  for (int i = 0; i < 20; ++i) {
    running += residue_frequency(residue_from_index(i));
    cdf[static_cast<std::size_t>(i)] = running;
  }
  // Normalize: the table sums to ~0.999; stretch to exactly 1.
  for (double& v : cdf) v /= running;
  return cdf;
}

char sample_residue(const std::array<double, 20>& cdf, Xoshiro256& rng) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const int index = static_cast<int>(it - cdf.begin());
  return residue_from_index(std::min(index, 19));
}

}  // namespace

ProteinDatabase generate_proteins(const ProteinGenOptions& options) {
  MSP_CHECK_MSG(options.mean_length > 0.0, "mean length must be positive");
  MSP_CHECK_MSG(options.min_length >= 2, "min length must be >= 2");
  MSP_CHECK_MSG(options.max_length >= options.min_length,
                "max length must be >= min length");

  const auto cdf = cumulative_frequencies();
  // Log-normal parameters from mean m and shape sigma: mu = ln m - sigma^2/2.
  const double mu = std::log(options.mean_length) -
                    options.length_sigma * options.length_sigma / 2.0;

  ProteinDatabase db;
  db.proteins.reserve(options.sequence_count);
  for (std::size_t i = 0; i < options.sequence_count; ++i) {
    // Per-sequence RNG stream: database prefixes are stable across sizes.
    Xoshiro256 rng(options.seed + 0x9e3779b9ULL * (i + 1));
    const double drawn = std::exp(mu + options.length_sigma * rng.normal());
    const auto length = static_cast<std::size_t>(std::clamp(
        drawn, static_cast<double>(options.min_length),
        static_cast<double>(options.max_length)));
    Protein protein;
    protein.id = options.id_prefix + "_" + std::to_string(i);
    protein.residues.reserve(length);
    for (std::size_t r = 0; r < length; ++r)
      protein.residues.push_back(sample_residue(cdf, rng));
    db.proteins.push_back(std::move(protein));
  }
  return db;
}

ProteinGenOptions human_like_options(double scale) {
  MSP_CHECK_MSG(scale > 0.0, "scale must be positive");
  ProteinGenOptions options;
  options.sequence_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(88333 * scale));
  options.mean_length = 301.66;
  options.seed = 1988;  // GenBank's first release year; any constant works
  options.id_prefix = "HUM";
  return options;
}

ProteinGenOptions microbial_like_options(double scale) {
  MSP_CHECK_MSG(scale > 0.0, "scale must be positive");
  ProteinGenOptions options;
  options.sequence_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(2655064 * scale));
  options.mean_length = 314.44;
  options.seed = 2009;
  options.id_prefix = "MIC";
  return options;
}

}  // namespace msp
