// Query-set generator: the stand-in for the paper's 1,210 human experimental
// spectra. Target peptides are tryptic digests sampled from a source
// database; each is pushed through the CID noise model. Optionally a
// fraction of targets is mutated or PTM-modified (the paper's motivation for
// variant generation), and a fraction is drawn from *outside* the searched
// database (unsequenced-organism queries, the metagenomics case).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mass/digest.hpp"
#include "mass/peptide.hpp"
#include "spectra/generator.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct QueryGenOptions {
  std::size_t query_count = 200;
  std::uint64_t seed = 1210;  ///< the paper's query count, as a nod
  DigestOptions digest;       ///< how target peptides are excised
  SpectrumNoiseModel noise;   ///< measurement simulation
  double mutation_fraction = 0.0;  ///< fraction with 1 random substitution
  /// Fraction of queries whose target comes from `decoy_source` instead of
  /// the searched database (if a decoy source is supplied).
  double foreign_fraction = 0.0;
  /// Sample only peptides anchored at a sequence terminus (first or last
  /// tryptic segment). Matches the paper's Section II-A candidate rule —
  /// under CandidateMode::kPrefixSuffix only anchored targets are findable.
  bool anchored_only = true;
};

struct GeneratedQuery {
  Spectrum spectrum;
  std::string true_peptide;   ///< ground truth (post-mutation)
  std::uint32_t source_protein = 0;
  bool foreign = false;       ///< true peptide not in the searched database
};

/// Sample queries from `source`. If `foreign_fraction > 0`, `decoy_source`
/// must be non-null and disjoint from `source`.
std::vector<GeneratedQuery> generate_queries(
    const ProteinDatabase& source, const QueryGenOptions& options,
    const ProteinDatabase* decoy_source = nullptr);

/// Strip to plain spectra (what the search engine consumes).
std::vector<Spectrum> spectra_of(const std::vector<GeneratedQuery>& queries);

}  // namespace msp
