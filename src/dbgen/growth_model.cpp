#include "dbgen/growth_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace msp {

std::vector<GrowthPoint> genbank_growth(int first_year, int last_year) {
  MSP_CHECK_MSG(last_year >= first_year, "year range inverted");
  // GenBank release notes: 2.3e7 bases (1988) → ~8.5e10 (2008); that is a
  // doubling time of about 20 months. Sequence count tracks bases with an
  // average entry length around 1.1 kb early, drifting to ~1.4 kb.
  std::vector<GrowthPoint> points;
  const double bases_1988 = 2.3e7;
  const double doubling_months = 20.0;
  for (int year = first_year; year <= last_year; ++year) {
    const double months = 12.0 * (year - 1988);
    GrowthPoint point;
    point.year = year;
    point.base_pairs = bases_1988 * std::pow(2.0, months / doubling_months);
    const double entry_length = 1100.0 + 15.0 * (year - 1988);
    point.sequences = point.base_pairs / entry_length;
    points.push_back(point);
  }
  return points;
}

double expected_candidates(std::uint64_t total_residues, double avg_length,
                           double tolerance_da) {
  MSP_CHECK_MSG(avg_length > 0.0, "average length must be positive");
  MSP_CHECK_MSG(tolerance_da > 0.0, "tolerance must be positive");
  // Each sequence offers ~2·L fragment masses (prefixes + suffixes) spaced,
  // on average, one residue mass apart (~111 Da). Around a typical parent
  // mass, each terminal of each sequence therefore contributes about
  // (2·tolerance)/111 candidate masses — provided the sequence is long
  // enough to reach that mass at all, which holds for avg_length ≥ ~20.
  constexpr double kMeanResidueMass = 111.1;
  const double sequences = static_cast<double>(total_residues) / avg_length;
  const double per_terminal = 2.0 * tolerance_da / kMeanResidueMass;
  return sequences * 2.0 * per_terminal;
}

std::vector<CandidateMagnitude> candidate_magnitudes(double tolerance_da) {
  // Scope sizes follow the paper's narrative: a curated protein family is
  // ~10^2-10^3 sequences, one microbial genome ~10^3-10^4 proteins, the
  // paper's microbial collection 2.65M proteins, and an environmental
  // community (GOS 2007 added 17M ORFs) an order of magnitude beyond that.
  struct Scope {
    const char* name;
    std::uint64_t sequences;
    double avg_length;
  };
  const Scope scopes[] = {
      {"known protein family", 500, 350.0},
      {"known genome", 5000, 320.0},
      {"microbial collection (paper)", 2655064, 314.44},
      {"environmental community", 20000000, 310.0},
  };
  // PTM multiplier: average variant count of a 15-residue tryptic peptide
  // under the standard variable set (phospho S/T, oxidation M) with <=2
  // sites — computed once from the mass/ptm model's combinatorics: a typical
  // peptide has ~2.6 modifiable sites → 1 + 2.6 + C(2.6,2) ≈ 5.7.
  constexpr double kPtmMultiplier = 5.7;

  std::vector<CandidateMagnitude> out;
  for (const Scope& scope : scopes) {
    CandidateMagnitude row;
    row.scope = scope.name;
    row.database_residues =
        static_cast<std::uint64_t>(scope.sequences * scope.avg_length);
    const double base = expected_candidates(row.database_residues,
                                            scope.avg_length, tolerance_da);
    row.candidates_no_ptm = static_cast<std::uint64_t>(base);
    row.candidates_with_ptm = static_cast<std::uint64_t>(base * kPtmMultiplier);
    out.push_back(row);
  }
  return out;
}

}  // namespace msp
