// Synthetic protein database generator — the stand-in for the paper's NCBI
// GenBank downloads (Table I: 88,333 human / 2,655,064 microbial proteins).
//
// Sequences are drawn i.i.d. from the natural amino-acid frequency table
// with lengths from a log-normal fit matching the paper's reported average
// lengths (301.66 and 314.44 residues). This preserves the statistics the
// algorithms actually feel: total residue count N, per-sequence mass
// distribution, and — through the composition model — the density of
// prefix/suffix masses in any query window.
#pragma once

#include <cstdint>
#include <string>

#include "mass/peptide.hpp"
#include "util/rng.hpp"

namespace msp {

struct ProteinGenOptions {
  std::size_t sequence_count = 1000;
  double mean_length = 314.44;  ///< paper's microbial average
  double length_sigma = 0.45;   ///< log-normal shape (UniProt-like spread)
  std::size_t min_length = 30;
  std::size_t max_length = 4000;
  std::uint64_t seed = 20090922;  ///< ICPP 2009 workshop date
  std::string id_prefix = "SYN";
};

/// Generate a deterministic synthetic database. Same options → same DB,
/// and a DB of size k is a strict prefix of any larger DB with the same
/// options (the paper's "arbitrary subsets of sizes 1K, 2K, 4K, ..." are
/// then literal prefixes, so scaling rows are nested exactly as theirs were).
ProteinDatabase generate_proteins(const ProteinGenOptions& options);

/// The paper's two reference databases, scaled by `scale` (1.0 reproduces
/// the published sequence counts; benches default to ~1/100 scale).
ProteinGenOptions human_like_options(double scale = 0.01);
ProteinGenOptions microbial_like_options(double scale = 0.01);

}  // namespace msp
