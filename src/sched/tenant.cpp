#include "sched/tenant.hpp"

#include "util/error.hpp"

namespace msp::sched {

TenantLedger::TenantLedger(const std::vector<TenantSpec>& specs,
                           double halflife_s)
    : specs_(specs), usage_(specs.size(), 0.0), halflife_s_(halflife_s) {
  MSP_CHECK_MSG(!specs_.empty(), "scheduler needs at least one tenant");
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    MSP_CHECK_MSG(!specs_[t].name.empty(), "tenant with an empty name");
    MSP_CHECK_MSG(specs_[t].weight > 0.0, "tenant weight must be positive");
    for (std::size_t u = 0; u < t; ++u)
      MSP_CHECK_MSG(specs_[u].name != specs_[t].name,
                    "duplicate tenant name: " + specs_[t].name);
  }
}

std::size_t TenantLedger::index_of(const std::string& name) const {
  for (std::size_t t = 0; t < specs_.size(); ++t)
    if (specs_[t].name == name) return t;
  throw InvalidArgument("job references unknown tenant: " + name);
}

void TenantLedger::advance(double now) {
  if (now <= last_advance_s_) return;
  if (halflife_s_ > 0.0) {
    const double factor =
        std::exp2(-(now - last_advance_s_) / halflife_s_);
    for (double& usage : usage_) usage *= factor;
  }
  last_advance_s_ = now;
}

}  // namespace msp::sched
