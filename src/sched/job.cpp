#include "sched/job.hpp"

#include "util/error.hpp"

namespace msp::sched {

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kBatch: return "batch";
    case JobKind::kServe: return "serve";
    case JobKind::kPack: return "pack";
  }
  return "?";
}

JobKind job_kind_from_name(const std::string& name) {
  if (name == "batch") return JobKind::kBatch;
  if (name == "serve") return JobKind::kServe;
  if (name == "pack") return JobKind::kPack;
  throw InvalidArgument("unknown job kind: " + name);
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

Priority priority_from_name(const std::string& name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  throw InvalidArgument("unknown priority: " + name);
}

}  // namespace msp::sched
