// Multi-tenant cluster scheduler over the simulated ring (DESIGN.md §5l).
//
// run_sched() plays a *job mix* — batch searches, latency-sensitive serve
// sessions, pack/index builds — against one shared serving ring
// (core/ring_service.hpp). The scheduler is the serving layer's replicated
// controller generalized from one query stream to many jobs: every rank
// runs the same controller on the same globally known inputs (job specs,
// submit schedule, each serve job's arrival schedule, the fault schedule),
// and every decision — job submission, serve dispatch, backfill admission,
// preemption, pack slices, fair-share decay — is taken only at
// fence-aligned boundaries where all virtual clocks are provably equal. No
// control messages exist, so there is nothing to reorder: the whole
// schedule is deterministic by the §5g argument.
//
// Work placement: all query-backed jobs execute as flights of the one
// ring. Batch jobs are sliced into fixed-size *chunks* admitted only when
// the ring has spare capacity — the Slurm-style backfill rule: a chunk is
// admitted iff its predicted completion (p ring steps at the EWMA step
// duration) fits before the next serve event, which is computable exactly
// because arrival schedules are global knowledge. A serve batch becoming
// ready preempts strictly-lower-priority chunks (when enabled): the chunk
// is removed whole from the ring and its queries re-queued — an *induced
// recoverable fault* riding the PR-1 crash-recovery contract, which is why
// preempted-then-resumed jobs stay bit-identical to their uncontended
// runs. Pack jobs consume idle boundaries that no chunk fits into.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/hit.hpp"
#include "core/ring_service.hpp"
#include "sched/job.hpp"
#include "sched/tenant.hpp"
#include "serve/service.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp::sched {

struct SchedOptions {
  std::vector<TenantSpec> tenants;
  std::vector<JobSpec> jobs;
  /// Submit times for jobs whose spec leaves submit_s < 0 (job j takes the
  /// j-th arrival). Reuses the serve-layer arrival processes verbatim.
  serve::ArrivalModel job_arrivals;
  /// Backfill batch chunks into measured serve idle spans. Off = batch
  /// jobs wait until every serve job has drained (the strict-partition
  /// baseline the bench compares against).
  bool backfill = true;
  /// Preempt strictly-lower-priority batch chunks when a serve batch
  /// becomes ready — the safety net for backfill misprediction.
  bool preempt = true;
  /// Queries per batch chunk (the backfill grain: one chunk = one ring
  /// flight of p steps).
  std::size_t chunk_queries = 8;
  /// Cap on batch chunks in flight at once (bounds how much per-step
  /// scoring weight backfill can add under a serve batch).
  std::size_t max_inflight_chunks = 2;
  /// Fair-share usage half-life (seconds of virtual time; <= 0 disables
  /// decay and makes usage lifetime-cumulative).
  double fairshare_halflife_s = 30.0;
  /// Seed for the EWMA ring-step-duration estimate the backfill
  /// fit check uses before any step has been observed.
  double step_estimate_init_s = 0.02;
  bool mass_routing = true;
  double route_bucket_da = kServeRouteBucketDa;
  std::size_t memory_budget_bytes = 0;
};

/// One job's lifecycle over the run, all times virtual (-1 = never).
struct JobOutcome {
  std::string name;
  std::string tenant;
  JobKind kind = JobKind::kBatch;
  Priority priority = Priority::kNormal;
  double submit_s = 0.0;
  double start_s = -1.0;     ///< first chunk/batch/slice entered the ring
  double complete_s = -1.0;  ///< last query published / last slice done
  std::size_t queries_completed = 0;
  std::size_t queries_shed = 0;  ///< serve only
  std::size_t preemptions = 0;   ///< chunks evicted (batch only)
  std::size_t backfill_chunks = 0;
  std::size_t pack_slices_done = 0;
};

struct SchedResult {
  sim::RunReport report;
  QueryHits hits;  ///< hits[q] best-first; owned by exactly one job
  /// Per-query lifecycle across every job (batch queries "arrive" at their
  /// job's submit time).
  std::vector<serve::QueryOutcome> outcomes;
  std::vector<JobOutcome> jobs;
  std::vector<TenantAccounting> tenants;
  std::size_t completed = 0;  ///< queries published, all jobs
  std::size_t shed = 0;
  std::size_t batches = 0;  ///< ring flights admitted (serve + chunks)
  int ring_steps = 0;
  std::size_t preemptions = 0;
  std::size_t backfill_chunks = 0;
  /// Ring time spent on batch-only steps while at least one serve job was
  /// live — compute reclaimed from what a serve-only run reports as
  /// serve_idle_seconds(). The numerator of the bench's reclaimed-idle
  /// ratio.
  double backfill_busy_s = 0.0;
  double pack_busy_s = 0.0;  ///< same, for pack slices in serve gaps
  double makespan_s = 0.0;
  double throughput_qps = 0.0;
};

/// Run the job mix on `runtime.size()` simulated ranks. `queries` is the
/// global stream every query-backed job owns a disjoint slice of.
SchedResult run_sched(const sim::Runtime& runtime,
                      const std::string& fasta_image,
                      const std::vector<Spectrum>& queries,
                      const SearchConfig& config, const SchedOptions& options);

}  // namespace msp::sched
