#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "core/search_engine.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp::sched {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Per-rank runtime state of one job. Mutated only at fence-aligned
/// boundaries from replicated inputs, so every rank's copy is identical.
struct JobRt {
  const JobSpec* spec = nullptr;
  std::size_t tenant = 0;
  double submit_s = 0.0;
  bool submitted = false;
  bool completed = false;
  double start_s = -1.0;
  double complete_s = -1.0;
  std::size_t completed_queries = 0;
  std::size_t shed = 0;
  std::size_t preemptions = 0;
  std::size_t backfill_chunks = 0;
  std::size_t inflight = 0;  ///< queries on the ring (dispatched, unpublished)
  // kBatch: queries awaiting (re-)admission, oldest first.
  std::deque<std::size_t> pending;
  // kServe: the serve-session control plane, one per job.
  std::optional<serve::AdaptiveBatcher> batcher;
  std::optional<serve::AdmissionController> admission;
  std::size_t next_arrival = 0;
  std::deque<std::size_t> waiting;  ///< kDelay backpressure queue
  std::deque<std::size_t> orphans;  ///< crash orphans awaiting re-admission
  std::deque<std::vector<std::size_t>> ready;  ///< closed, undispatched
  // kPack:
  std::size_t pack_done = 0;

  bool live() const { return submitted && !completed; }
};

/// One flight the scheduler admitted, by ring batch id (ids are dense).
struct FlightRec {
  std::size_t job = 0;
  std::size_t queries = 0;
  bool is_serve = false;
  bool active = false;
};

/// The replicated scheduler controller (the serve-layer Controller
/// generalized to a job mix; see the header comment for the decision
/// rules). One instance per rank, identical inputs, identical trajectory.
class SchedController {
 public:
  SchedController(sim::Comm& comm, const SchedOptions& options,
                  const std::vector<double>& submits,
                  const std::vector<std::vector<double>>& serve_arrivals,
                  std::size_t query_count)
      : comm_(comm),
        options_(options),
        serve_arrivals_(serve_arrivals),
        ledger_(options.tenants, options.fairshare_halflife_s),
        outcomes_(query_count),
        step_estimate_s_(options.step_estimate_init_s) {
    jobs_.resize(options_.jobs.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      JobRt& job = jobs_[j];
      job.spec = &options_.jobs[j];
      job.tenant = ledger_.index_of(job.spec->tenant);
      job.submit_s = submits[j];
    }
  }

  /// Advance the control plane to the fence-aligned time `now`: decay fair
  /// share, submit due jobs, replay every live serve session's arrival and
  /// deadline events, re-admit orphans, and retire finished jobs.
  void boundary(double now) {
    ledger_.advance(now);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      JobRt& job = jobs_[j];
      if (!job.submitted && job.submit_s <= now) submit(j, now);
      if (job.live() && job.spec->kind == JobKind::kServe)
        replay_serve(j, now);
    }
    retire_completed(now);
  }

  /// Batch chunks to evict so a ready serve batch rides a clean ring:
  /// every active chunk whose job's priority is strictly below the
  /// highest-priority ready serve batch. Empty when preemption is off or
  /// nothing is ready.
  std::vector<std::size_t> take_preemptions() const {
    std::vector<std::size_t> victims;
    if (!options_.preempt) return victims;
    int ready_priority = -1;
    for (const JobRt& job : jobs_)
      if (job.live() && job.spec->kind == JobKind::kServe && !job.ready.empty())
        ready_priority = std::max(ready_priority,
                                  static_cast<int>(job.spec->priority));
    if (ready_priority < 0) return victims;
    for (std::size_t id = 0; id < flights_.size(); ++id) {
      const FlightRec& flight = flights_[id];
      if (!flight.active || flight.is_serve) continue;
      if (static_cast<int>(jobs_[flight.job].spec->priority) < ready_priority)
        victims.push_back(id);
    }
    return victims;
  }

  /// Fold a preempted flight's queries back into its job (the induced-
  /// fault re-queue: they go to the *front* — they are the job's oldest
  /// unserved work — and will be re-scored from scratch).
  void requeue_preempted(std::size_t batch_id,
                         const std::vector<std::size_t>& ids, double now) {
    FlightRec& flight = flights_[batch_id];
    JobRt& job = jobs_[flight.job];
    flight.active = false;
    --batch_flights_;
    job.inflight -= ids.size();
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      ++outcomes_[*it].redispatches;
      job.pending.push_front(*it);
    }
    ++job.preemptions;
    ++preemptions_;
    comm_.trace_sched(sim::SpanKind::kSchedPreempt,
                      "job " + job.spec->name + ": chunk " +
                          std::to_string(batch_id) + " preempted (" +
                          std::to_string(ids.size()) + " queries re-queued) "
                          "at boundary " + std::to_string(step_hint(now)));
  }

  /// Flights to admit at this boundary: every ready serve batch, then —
  /// when the ring is serve-quiet and the gap fits — backfill chunks from
  /// the fair-share-ranked batch jobs.
  std::vector<ServiceBatch> take_dispatch(double now) {
    std::vector<ServiceBatch> out;
    // Serve batches first, in job order (replicated, hence deterministic).
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      JobRt& job = jobs_[j];
      if (!job.live() || job.spec->kind != JobKind::kServe) continue;
      while (!job.ready.empty()) {
        out.push_back(make_flight(j, std::move(job.ready.front()), now,
                                  /*is_serve=*/true, /*backfilled=*/false));
        job.ready.pop_front();
      }
    }
    const bool serve_quiet = serve_flights_ == 0 && out.empty();
    if (!serve_quiet) return out;

    // Backfill window: with backfill on, a chunk fits iff its predicted
    // completion (p steps at the EWMA estimate) lands before the next
    // serve event — computable exactly because every schedule is global.
    // With backfill off, batch work waits for a serve-free cluster.
    const double next_serve = next_serve_event();
    while (batch_flights_ < options_.max_inflight_chunks) {
      const bool fits =
          options_.backfill
              ? now + static_cast<double>(comm_.size()) * step_estimate_s_ <=
                    next_serve
              : next_serve >= kNever;
      if (!fits) break;
      const std::size_t j = pick_batch_job();
      if (j == jobs_.size()) break;
      JobRt& job = jobs_[j];
      std::size_t take = std::min(options_.chunk_queries, job.pending.size());
      const std::size_t cap = ledger_.spec(job.tenant).max_inflight_queries;
      if (cap != 0)
        take = std::min(take, cap - tenant_inflight(job.tenant));
      std::vector<std::size_t> ids;
      ids.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        ids.push_back(job.pending.front());
        job.pending.pop_front();
      }
      const bool backfilled = any_serve_live();
      out.push_back(make_flight(j, std::move(ids), now, /*is_serve=*/false,
                                backfilled));
    }
    return out;
  }

  /// A pack slice to run at an idle boundary (nothing dispatched, nothing
  /// in flight), fair-share ranked like chunks; jobs_.size() = none fits.
  std::size_t take_pack_slice(double now) {
    const double next_serve = next_serve_event();
    std::size_t best = jobs_.size();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobRt& job = jobs_[j];
      if (!job.live() || job.spec->kind != JobKind::kPack) continue;
      const double cost =
          job.spec->pack_slice_compute_s + job.spec->pack_slice_io_s;
      const bool fits = options_.backfill ? now + cost <= next_serve
                                          : next_serve >= kNever;
      if (!fits) continue;
      if (best == jobs_.size() || ranks_before(j, best)) best = j;
    }
    return best;
  }

  /// Record a pack slice's execution (the body charged its cost already).
  void on_pack_slice(std::size_t j, double now) {
    JobRt& job = jobs_[j];
    if (job.start_s < 0.0) {
      job.start_s = now;
      comm_.trace_sched(sim::SpanKind::kSchedStart,
                        "job " + job.spec->name + " started (pack)");
    }
    ++job.pack_done;
    if (any_serve_live())
      pack_busy_s_ +=
          job.spec->pack_slice_compute_s + job.spec->pack_slice_io_s;
    ledger_.charge(job.tenant, 1.0);
    comm_.trace_sched(sim::SpanKind::kSchedSlice,
                      "job " + job.spec->name + ": slice " +
                          std::to_string(job.pack_done) + "/" +
                          std::to_string(job.spec->pack_slices));
  }

  /// Fold one ring step's outcome back into the scheduler: publications
  /// complete queries and charge fair-share usage, crash orphans re-queue
  /// through their owning job, and the EWMA step estimate learns the
  /// observed boundary-to-boundary duration.
  void on_step(const ServiceStepOutcome& out, double prev_boundary,
               bool serve_was_quiet) {
    const double delta = out.boundary_time - prev_boundary;
    if (delta > 0.0)
      step_estimate_s_ = 0.5 * step_estimate_s_ + 0.5 * delta;
    // A batch-only step inside a live serve session is reclaimed idle: a
    // serve-only run would have parked its clocks for exactly this span.
    if (serve_was_quiet && batch_flights_ > 0 && any_serve_live())
      backfill_busy_s_ += delta;

    for (const PublishedBatch& batch : out.published) {
      FlightRec& flight = flights_[batch.batch_id];
      JobRt& job = jobs_[flight.job];
      flight.active = false;
      if (flight.is_serve)
        --serve_flights_;
      else
        --batch_flights_;
      job.inflight -= batch.query_ids.size();
      job.completed_queries += batch.query_ids.size();
      for (const std::size_t id : batch.query_ids)
        outcomes_[id].complete_s = out.boundary_time;
      if (flight.is_serve) job.admission->release(batch.query_ids.size());
      ledger_.charge(job.tenant,
                     static_cast<double>(batch.query_ids.size()));
    }
    for (const std::size_t id : out.orphaned) {
      JobRt& job = jobs_[owner_of(id)];
      --job.inflight;
      if (job.spec->kind == JobKind::kServe) {
        job.orphans.push_back(id);  // re-enters through its batcher
      } else {
        ++outcomes_[id].redispatches;
        job.pending.push_back(id);
      }
    }
  }

  bool drained() const {
    for (const JobRt& job : jobs_)
      if (!job.completed) return false;
    return true;
  }

  /// Next control-plane instant the idle ring must wake for: an
  /// unsubmitted job's submit time, or a live serve session's next arrival
  /// or batch deadline.
  double next_event_time() const {
    double next = kNever;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobRt& job = jobs_[j];
      if (!job.submitted) {
        next = std::min(next, job.submit_s);
        continue;
      }
      if (job.completed || job.spec->kind != JobKind::kServe) continue;
      const std::vector<double>& arrivals = serve_arrivals_[j];
      if (job.next_arrival < arrivals.size())
        next = std::min(next, arrivals[job.next_arrival]);
      next = std::min(next, job.batcher->next_deadline());
    }
    return next;
  }

  std::size_t serve_flights() const { return serve_flights_; }
  std::size_t batch_flights() const { return batch_flights_; }
  bool any_serve_live() const {
    for (const JobRt& job : jobs_)
      if (job.live() && job.spec->kind == JobKind::kServe) return true;
    return false;
  }

  // ---- end-of-run exports (rank 0 copies these out) ----
  std::vector<serve::QueryOutcome>& outcomes() { return outcomes_; }
  const std::vector<JobRt>& jobs() const { return jobs_; }
  const TenantLedger& ledger() const { return ledger_; }
  std::size_t batches_admitted() const { return flights_.size(); }
  std::size_t preemptions() const { return preemptions_; }
  std::size_t backfill_chunks() const { return backfill_chunks_; }
  double backfill_busy_s() const { return backfill_busy_s_; }
  double pack_busy_s() const { return pack_busy_s_; }

 private:
  void submit(std::size_t j, double now) {
    JobRt& job = jobs_[j];
    job.submitted = true;
    const JobSpec& spec = *job.spec;
    if (spec.kind == JobKind::kBatch) {
      for (std::size_t id = spec.query_begin; id < spec.query_end; ++id) {
        job.pending.push_back(id);
        outcomes_[id].arrival_s = job.submit_s;
      }
    } else if (spec.kind == JobKind::kServe) {
      job.batcher.emplace(spec.batch);
      job.admission.emplace(spec.admission);
    }
    comm_.trace_sched(
        sim::SpanKind::kSchedSubmit,
        "job " + spec.name + " submitted (" + job_kind_name(spec.kind) +
            ", " + priority_name(spec.priority) + ", tenant " + spec.tenant +
            ", " + std::to_string(spec.query_count()) + " queries)");
    (void)now;
  }

  /// The serve-layer boundary replay, scoped to one job's session (same
  /// event order: orphans, freed-capacity drain, then arrivals and batch
  /// deadlines interleaved with deadline-before-arrival ties).
  void replay_serve(std::size_t j, double now) {
    JobRt& job = jobs_[j];
    const std::vector<double>& arrivals = serve_arrivals_[j];
    const std::size_t readmitted = job.orphans.size();
    for (const std::size_t id : job.orphans) {
      ++outcomes_[id].redispatches;
      job.batcher->enqueue(id, now);
    }
    job.orphans.clear();

    std::size_t admitted = 0;
    while (!job.waiting.empty() && job.admission->try_admit()) {
      const std::size_t id = job.waiting.front();
      job.waiting.pop_front();
      outcomes_[id].admit_s = now;
      job.batcher->enqueue(id, now);
      ++admitted;
    }

    std::size_t shed = 0;
    for (;;) {
      const double arrival = job.next_arrival < arrivals.size()
                                 ? arrivals[job.next_arrival]
                                 : kNever;
      const double deadline = job.batcher->next_deadline();
      if (std::min(arrival, deadline) > now) break;
      if (deadline <= arrival) {
        job.batcher->close_due(deadline);
        continue;
      }
      const std::size_t id = job.spec->query_begin + job.next_arrival++;
      outcomes_[id].arrival_s = arrival;
      if (job.admission->try_admit()) {
        outcomes_[id].admit_s = arrival;
        job.batcher->enqueue(id, arrival);
        ++admitted;
      } else if (job.admission->policy().overload ==
                 serve::OverloadPolicy::kShed) {
        outcomes_[id].shed = true;
        ++shed;
      } else {
        job.waiting.push_back(id);
      }
    }
    job.shed += shed;

    for (auto& ids : job.batcher->take_closed())
      job.ready.push_back(std::move(ids));

    if (admitted + readmitted > 0)
      comm_.trace_serve(sim::SpanKind::kServeAdmit,
                        "job " + job.spec->name + ": admitted " +
                            std::to_string(admitted) +
                            (readmitted > 0 ? " +" +
                                                  std::to_string(readmitted) +
                                                  " re-admitted"
                                            : std::string()));
    if (shed > 0)
      comm_.trace_serve(sim::SpanKind::kServeShed,
                        "job " + job.spec->name + ": shed " +
                            std::to_string(shed));
  }

  void retire_completed(double now) {
    for (JobRt& job : jobs_) {
      if (!job.live()) continue;
      bool done = false;
      switch (job.spec->kind) {
        case JobKind::kBatch:
          done = job.pending.empty() && job.inflight == 0 &&
                 job.completed_queries == job.spec->query_count();
          break;
        case JobKind::kServe:
          done = job.next_arrival == job.spec->query_count() &&
                 job.waiting.empty() && job.orphans.empty() &&
                 job.batcher->pending() == 0 && job.ready.empty() &&
                 job.inflight == 0;
          break;
        case JobKind::kPack:
          done = job.pack_done == job.spec->pack_slices;
          break;
      }
      if (!done) continue;
      job.completed = true;
      job.complete_s = now;
      comm_.trace_sched(sim::SpanKind::kSchedComplete,
                        "job " + job.spec->name + " completed (" +
                            std::to_string(job.completed_queries) +
                            " queries)");
    }
  }

  ServiceBatch make_flight(std::size_t j, std::vector<std::size_t> ids,
                           double now, bool is_serve, bool backfilled) {
    JobRt& job = jobs_[j];
    ServiceBatch batch;
    batch.id = flights_.size();
    batch.query_ids = std::move(ids);
    flights_.push_back(
        FlightRec{j, batch.query_ids.size(), is_serve, /*active=*/true});
    if (is_serve)
      ++serve_flights_;
    else
      ++batch_flights_;
    job.inflight += batch.query_ids.size();
    for (const std::size_t id : batch.query_ids) {
      outcomes_[id].dispatch_s = now;
      outcomes_[id].batch_id = batch.id;
      if (outcomes_[id].admit_s < 0.0) outcomes_[id].admit_s = now;
    }
    if (job.start_s < 0.0) {
      job.start_s = now;
      comm_.trace_sched(sim::SpanKind::kSchedStart,
                        "job " + job.spec->name + " started");
    }
    if (backfilled) {
      ++job.backfill_chunks;
      ++backfill_chunks_;
      comm_.trace_sched(sim::SpanKind::kSchedBackfill,
                        "job " + job.spec->name + ": chunk " +
                            std::to_string(batch.id) + " backfilled (" +
                            std::to_string(batch.query_ids.size()) +
                            " queries)");
    }
    return batch;
  }

  /// The runnable batch job backfill serves next: highest priority, then
  /// lowest weight-normalized decayed tenant usage, then job ordinal.
  std::size_t pick_batch_job() const {
    std::size_t best = jobs_.size();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobRt& job = jobs_[j];
      if (!job.live() || job.spec->kind != JobKind::kBatch ||
          job.pending.empty())
        continue;
      const std::size_t cap = ledger_.spec(job.tenant).max_inflight_queries;
      if (cap != 0 && tenant_inflight(job.tenant) >= cap) continue;
      if (best == jobs_.size() || ranks_before(j, best)) best = j;
    }
    return best;
  }

  /// Strict-weak scheduling order over runnable jobs (see pick_batch_job).
  bool ranks_before(std::size_t a, std::size_t b) const {
    const JobRt& ja = jobs_[a];
    const JobRt& jb = jobs_[b];
    if (ja.spec->priority != jb.spec->priority)
      return static_cast<int>(ja.spec->priority) >
             static_cast<int>(jb.spec->priority);
    const double ua = ledger_.normalized_usage(ja.tenant);
    const double ub = ledger_.normalized_usage(jb.tenant);
    if (ua != ub) return ua < ub;
    return a < b;
  }

  std::size_t tenant_inflight(std::size_t t) const {
    std::size_t total = 0;
    for (const JobRt& job : jobs_)
      if (job.tenant == t && job.spec->kind == JobKind::kBatch)
        total += job.inflight;
    return total;
  }

  /// Earliest instant serve work can (re)claim the ring: a live session's
  /// next arrival or deadline, or an unsubmitted serve job's submit time.
  /// +inf when no serve work will ever appear again — the gap batch work
  /// backfills into must close before this.
  double next_serve_event() const {
    double next = kNever;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobRt& job = jobs_[j];
      if (job.spec->kind != JobKind::kServe || job.completed) continue;
      if (!job.submitted) {
        next = std::min(next, job.submit_s);
        continue;
      }
      const std::vector<double>& arrivals = serve_arrivals_[j];
      if (job.next_arrival < arrivals.size())
        next = std::min(next, arrivals[job.next_arrival]);
      next = std::min(next, job.batcher->next_deadline());
    }
    return next;
  }

  std::size_t owner_of(std::size_t id) const {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobSpec& spec = *jobs_[j].spec;
      if (spec.kind == JobKind::kPack) continue;
      if (id >= spec.query_begin && id < spec.query_end) return j;
    }
    throw InvalidArgument("orphaned query id owned by no job");
  }

  /// Human-readable boundary tag for trace labels (whole virtual ms —
  /// plain data, never fed back into any decision).
  static long step_hint(double now) {
    return static_cast<long>(now * 1000.0);
  }

  sim::Comm& comm_;
  const SchedOptions& options_;
  const std::vector<std::vector<double>>& serve_arrivals_;
  TenantLedger ledger_;
  std::vector<JobRt> jobs_;
  std::vector<serve::QueryOutcome> outcomes_;
  std::vector<FlightRec> flights_;
  std::size_t serve_flights_ = 0;
  std::size_t batch_flights_ = 0;
  std::size_t preemptions_ = 0;
  std::size_t backfill_chunks_ = 0;
  double backfill_busy_s_ = 0.0;
  double pack_busy_s_ = 0.0;
  double step_estimate_s_ = 0.0;
};

struct BodyOutput {
  std::vector<serve::QueryOutcome> outcomes;
  std::vector<JobOutcome> jobs;
  std::vector<TenantAccounting> tenants;
  std::size_t batches = 0;
  std::size_t preemptions = 0;
  std::size_t backfill_chunks = 0;
  double backfill_busy_s = 0.0;
  double pack_busy_s = 0.0;
  int ring_steps = 0;
};

void sched_body(sim::Comm& comm, const std::string& fasta_image,
                const std::vector<Spectrum>& queries,
                const std::vector<double>& submits,
                const std::vector<std::vector<double>>& serve_arrivals,
                const SearchEngine& engine, const SchedOptions& options,
                QueryHits& all_hits, BodyOutput& output) {
  RingService ring(comm, fasta_image,
                   std::span<const Spectrum>(queries.data(), queries.size()),
                   engine, all_hits, options.mass_routing,
                   options.route_bucket_da);
  SchedController ctl(comm, options, submits, serve_arrivals, queries.size());

  // The scheduler event loop: the serve loop of src/serve/service.cpp with
  // three new boundary decisions (preempt, backfill, pack slice). Every
  // `boundary` value is fence-aligned — the post-construction barrier, a
  // step's boundary time, a pack slice's post-barrier clock, an idle
  // target — never a raw clock read after divergent per-rank charges.
  double boundary = comm.clock().now();
  for (;;) {
    ctl.boundary(boundary);
    for (const std::size_t victim : ctl.take_preemptions()) {
      const std::vector<std::size_t> ids = ring.preempt(victim);
      ctl.requeue_preempted(victim, ids, boundary);
    }
    for (ServiceBatch& batch : ctl.take_dispatch(boundary)) ring.admit(batch);

    if (ring.in_flight() == 0) {
      if (ctl.drained()) break;
      const std::size_t pack_job = ctl.take_pack_slice(boundary);
      if (pack_job != options.jobs.size()) {
        // One deterministic build slice on every rank, fenced so the next
        // boundary is shared. Only time moves — hits are untouched.
        const JobSpec& spec = options.jobs[pack_job];
        comm.clock().charge_compute(spec.pack_slice_compute_s);
        comm.clock().charge_io(spec.pack_slice_io_s);
        comm.barrier();
        boundary = comm.clock().now();
        ctl.on_pack_slice(pack_job, boundary);
        continue;
      }
      // Idle gap: nothing runnable fits before the next control event.
      const double next = ctl.next_event_time();
      MSP_CHECK_MSG(next < kNever, "idle scheduler with no future event");
      comm.clock().idle_until(next);
      boundary = std::max(boundary, next);
      continue;
    }

    const bool serve_was_quiet = ctl.serve_flights() == 0;
    const ServiceStepOutcome out = ring.step(!ctl.drained());
    ctl.on_step(out, boundary, serve_was_quiet);
    boundary = out.boundary_time;
  }
  ring.finish();

  // Fold the tenant ledger into the RunReport as rank-0 integer counters —
  // micro-units for the continuous quantities — so the existing CSV/JSON
  // plumbing carries the accounting without a schema of its own.
  if (comm.rank() == 0) {
    comm.bump("sched_preemptions", ctl.preemptions());
    comm.bump("sched_backfill_chunks", ctl.backfill_chunks());
    comm.bump("sched_backfill_busy_us",
              static_cast<std::uint64_t>(
                  std::llround(ctl.backfill_busy_s() * 1e6)));
    for (std::size_t t = 0; t < ctl.ledger().size(); ++t) {
      const std::string& name = ctl.ledger().spec(t).name;
      std::size_t completed = 0;
      std::size_t jobs_done = 0;
      for (const JobRt& job : ctl.jobs()) {
        if (job.tenant != t) continue;
        completed += job.completed_queries;
        if (job.completed) ++jobs_done;
      }
      comm.bump("tenant_" + name + "_completed", completed);
      comm.bump("tenant_" + name + "_jobs", jobs_done);
      comm.bump("tenant_" + name + "_usage_micro",
                static_cast<std::uint64_t>(
                    std::llround(ctl.ledger().usage(t) * 1e6)));
    }

    output.outcomes = std::move(ctl.outcomes());
    output.batches = ctl.batches_admitted();
    output.preemptions = ctl.preemptions();
    output.backfill_chunks = ctl.backfill_chunks();
    output.backfill_busy_s = ctl.backfill_busy_s();
    output.pack_busy_s = ctl.pack_busy_s();
    output.ring_steps = ring.steps_done();

    output.jobs.reserve(ctl.jobs().size());
    for (const JobRt& job : ctl.jobs()) {
      JobOutcome outcome;
      outcome.name = job.spec->name;
      outcome.tenant = job.spec->tenant;
      outcome.kind = job.spec->kind;
      outcome.priority = job.spec->priority;
      outcome.submit_s = job.submit_s;
      outcome.start_s = job.start_s;
      outcome.complete_s = job.complete_s;
      outcome.queries_completed = job.completed_queries;
      outcome.queries_shed = job.shed;
      outcome.preemptions = job.preemptions;
      outcome.backfill_chunks = job.backfill_chunks;
      outcome.pack_slices_done = job.pack_done;
      output.jobs.push_back(std::move(outcome));
    }

    output.tenants.reserve(ctl.ledger().size());
    for (std::size_t t = 0; t < ctl.ledger().size(); ++t) {
      TenantAccounting account;
      account.name = ctl.ledger().spec(t).name;
      account.weight = ctl.ledger().spec(t).weight;
      account.usage_end = ctl.ledger().usage(t);
      for (const JobRt& job : ctl.jobs()) {
        if (job.tenant != t) continue;
        ++account.jobs_submitted;
        if (job.completed) ++account.jobs_completed;
        account.queries_completed += job.completed_queries;
        account.queries_shed += job.shed;
        account.preemptions += job.preemptions;
        account.backfill_chunks += job.backfill_chunks;
        account.pack_slices += job.pack_done;
      }
      output.tenants.push_back(std::move(account));
    }
  }
}

void validate(const std::vector<Spectrum>& queries,
              const SchedOptions& options) {
  if (options.jobs.empty())
    throw InvalidArgument("scheduler needs at least one job");
  if (options.chunk_queries == 0)
    throw InvalidArgument("chunk_queries must be >= 1");
  if (options.max_inflight_chunks == 0)
    throw InvalidArgument("max_inflight_chunks must be >= 1");
  if (options.step_estimate_init_s <= 0.0)
    throw InvalidArgument("step_estimate_init_s must be positive");
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (const JobSpec& job : options.jobs) {
    if (job.name.empty()) throw InvalidArgument("job with an empty name");
    if (job.kind == JobKind::kPack) {
      if (job.pack_slices == 0)
        throw InvalidArgument("pack job " + job.name + " with zero slices");
      continue;
    }
    if (job.query_begin > job.query_end || job.query_end > queries.size())
      throw InvalidArgument("job " + job.name + " query range out of bounds");
    if (job.query_count() > 0)
      ranges.emplace_back(job.query_begin, job.query_end);
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i)
    if (ranges[i].first < ranges[i - 1].second)
      throw InvalidArgument("job query ranges overlap — every query needs "
                            "exactly one owner");
}

}  // namespace

SchedResult run_sched(const sim::Runtime& runtime,
                      const std::string& fasta_image,
                      const std::vector<Spectrum>& queries,
                      const SearchConfig& config,
                      const SchedOptions& options) {
  validate(queries, options);
  const SearchEngine engine(config);

  // Submit schedule: explicit submit_s wins; the rest take their ordinal's
  // arrival from the job arrival model — both pure functions of the spec.
  std::vector<double> submits =
      serve::make_arrivals(options.job_arrivals, options.jobs.size());
  std::vector<std::vector<double>> serve_arrivals(options.jobs.size());
  for (std::size_t j = 0; j < options.jobs.size(); ++j) {
    const JobSpec& job = options.jobs[j];
    if (job.submit_s >= 0.0) submits[j] = job.submit_s;
    if (job.kind != JobKind::kServe) continue;
    serve_arrivals[j] = serve::make_arrivals(job.arrivals, job.query_count());
    for (double& t : serve_arrivals[j]) t += submits[j];
  }

  QueryHits all_hits(queries.size());
  BodyOutput output;
  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);
    sched_body(comm, fasta_image, queries, submits, serve_arrivals, engine,
               options, all_hits, output);
  });

  SchedResult result;
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  result.outcomes = std::move(output.outcomes);
  result.jobs = std::move(output.jobs);
  result.tenants = std::move(output.tenants);
  result.batches = output.batches;
  result.preemptions = output.preemptions;
  result.backfill_chunks = output.backfill_chunks;
  result.backfill_busy_s = output.backfill_busy_s;
  result.pack_busy_s = output.pack_busy_s;
  result.ring_steps = output.ring_steps;

  for (const serve::QueryOutcome& outcome : result.outcomes) {
    if (outcome.shed) ++result.shed;
    if (outcome.complete_s < 0.0) continue;
    ++result.completed;
    result.makespan_s = std::max(result.makespan_s, outcome.complete_s);
  }
  for (const JobOutcome& job : result.jobs)
    result.makespan_s = std::max(result.makespan_s, job.complete_s);
  if (result.makespan_s > 0.0)
    result.throughput_qps =
        static_cast<double>(result.completed) / result.makespan_s;

  // Per-tenant serve latency and throughput, from the same outcomes the
  // serve layer summarizes — comparable numbers by construction.
  for (TenantAccounting& tenant : result.tenants) {
    std::vector<double> latencies;
    for (std::size_t j = 0; j < result.jobs.size(); ++j) {
      const JobOutcome& job = result.jobs[j];
      if (job.tenant != tenant.name || job.kind != JobKind::kServe) continue;
      const JobSpec& spec = options.jobs[j];
      for (std::size_t id = spec.query_begin; id < spec.query_end; ++id) {
        const serve::QueryOutcome& outcome = result.outcomes[id];
        if (outcome.complete_s < 0.0) continue;
        latencies.push_back(outcome.complete_s - outcome.arrival_s);
      }
    }
    tenant.serve_latency = serve::summarize_latencies(std::move(latencies));
    if (result.makespan_s > 0.0)
      tenant.throughput_qps =
          static_cast<double>(tenant.queries_completed) / result.makespan_s;
  }
  return result;
}

}  // namespace msp::sched
