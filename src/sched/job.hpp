// Job model for the multi-tenant cluster scheduler (DESIGN.md §5l).
//
// A *job* is the scheduler's unit of admission: a batch search over a slice
// of the global query stream, an online serve session with its own arrival
// process, or a pack/index build. Jobs carry a tenant identity (QOS and
// accounting are per tenant, Slurm-style) and a priority class; the
// scheduler controller decides — only at fence-aligned boundaries, from
// globally known schedules — when each job's work enters the shared
// serving ring. Specs are plain data replicated to every rank, which is
// what lets the per-rank controllers agree on every decision without a
// single control message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/batcher.hpp"

namespace msp::sched {

enum class JobKind {
  kBatch,  ///< offline search over a query range (any Algorithm A/B/... —
           ///< executed as ring flights, hit-identical to every driver)
  kServe,  ///< latency-sensitive serve session with its own arrival model
  kPack,   ///< pack/index build: deterministic compute+io slices, no queries
};

const char* job_kind_name(JobKind kind);
/// "batch" | "serve" | "pack"; throws InvalidArgument otherwise.
JobKind job_kind_from_name(const std::string& name);

/// Priority classes, higher wins. Preemption only ever victimizes *batch*
/// work of a class strictly below the dispatching serve job's class.
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

const char* priority_name(Priority priority);
/// "low" | "normal" | "high"; throws InvalidArgument otherwise.
Priority priority_from_name(const std::string& name);

/// One tenant of the cluster: fair-share weight plus hard QOS limits.
struct TenantSpec {
  std::string name;
  /// Fair-share weight: decayed usage is divided by it when the scheduler
  /// ranks tenants for backfill, so a weight-2 tenant sustains twice the
  /// batch throughput of a weight-1 tenant under contention.
  double weight = 1.0;
  /// Cap on this tenant's batch queries in flight on the ring at once
  /// (0 = unlimited). The per-tenant analogue of the serve admission cap.
  std::size_t max_inflight_queries = 0;
};

/// One job submitted to the cluster. Query-backed kinds own the half-open
/// range [query_begin, query_end) of the global stream; ranges of distinct
/// jobs must not overlap (each query has exactly one owner).
struct JobSpec {
  std::string name;
  std::string tenant;  ///< must match a TenantSpec::name
  JobKind kind = JobKind::kBatch;
  Priority priority = Priority::kNormal;
  /// Virtual submission time; < 0 means "taken from the scheduler's job
  /// arrival model" (SchedOptions::job_arrivals).
  double submit_s = -1.0;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  /// kBatch: which driver the job asked for. The ring *is* the unified
  /// execution engine — every algorithm is hit-identical by the repo's
  /// core invariant, so this is validated metadata that names the
  /// equivalent standalone run (the oracle the tests compare against).
  Algorithm algorithm = Algorithm::kAlgorithmA;
  /// kServe: this session's arrival process (times relative to submit_s),
  /// batching, and admission policy.
  serve::ArrivalModel arrivals;
  serve::BatchPolicy batch;
  serve::AdmissionPolicy admission;
  /// kPack: deterministic build slices (each charges compute+io on every
  /// rank, then fences). Progress needs pack_slices boundary gaps.
  std::size_t pack_slices = 0;
  double pack_slice_compute_s = 0.01;
  double pack_slice_io_s = 0.002;

  std::size_t query_count() const { return query_end - query_begin; }
};

}  // namespace msp::sched
