// Per-tenant QOS state and accounting for the cluster scheduler.
//
// Fair share is Slurm-shaped: every tenant accumulates *usage* (queries'
// worth of ring work it consumed) that decays exponentially with a
// configured half-life, and the backfill scheduler always serves the
// runnable tenant with the lowest weight-normalized decayed usage — so a
// tenant that just burned a large batch slides to the back of the line and
// recovers its share as the decay forgets. All state advances only at
// fence-aligned boundaries on the virtual clock (never a host clock), with
// ties broken by tenant ordinal, so every rank's replica of the ledger
// walks the identical trajectory.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/job.hpp"
#include "serve/slo.hpp"

namespace msp::sched {

/// What one tenant did over a scheduled run — the `TenantAccounting`
/// record folded into RunReport counters and rendered per tenant in
/// BENCH_sched.json.
struct TenantAccounting {
  std::string name;
  double weight = 1.0;
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t queries_completed = 0;  ///< published (serve + batch)
  std::size_t queries_shed = 0;       ///< serve arrivals dropped by admission
  std::size_t preemptions = 0;        ///< chunks evicted from the ring
  std::size_t backfill_chunks = 0;    ///< chunks admitted into serve gaps
  std::size_t pack_slices = 0;        ///< pack/build slices executed
  double usage_end = 0.0;             ///< decayed usage at the final boundary
  double throughput_qps = 0.0;        ///< queries_completed / makespan
  /// Completion latency of the tenant's *serve* queries (empty for
  /// batch-only tenants).
  serve::LatencySummary serve_latency;
};

/// The replicated fair-share ledger (one instance per rank, identical
/// inputs → identical state).
class TenantLedger {
 public:
  TenantLedger(const std::vector<TenantSpec>& specs, double halflife_s);

  std::size_t size() const { return specs_.size(); }
  const TenantSpec& spec(std::size_t t) const { return specs_[t]; }

  /// Ordinal of `name`; throws InvalidArgument when unknown.
  std::size_t index_of(const std::string& name) const;

  /// Decay every tenant's usage from the last boundary to `now`
  /// (usage *= 2^(-Δt / halflife); a non-positive half-life disables decay
  /// and makes fair share lifetime-cumulative).
  void advance(double now);

  /// Charge `amount` usage units (query scoring slots) to tenant `t`.
  void charge(std::size_t t, double amount) { usage_[t] += amount; }

  /// Weight-normalized decayed usage — the backfill ranking key.
  double normalized_usage(std::size_t t) const {
    return usage_[t] / specs_[t].weight;
  }
  double usage(std::size_t t) const { return usage_[t]; }

  /// True when admitting `more` in-flight queries would push tenant `t`
  /// over its max_inflight_queries cap.
  bool over_inflight_cap(std::size_t t, std::size_t inflight,
                         std::size_t more) const {
    const std::size_t cap = specs_[t].max_inflight_queries;
    return cap != 0 && inflight + more > cap;
  }

 private:
  std::vector<TenantSpec> specs_;
  std::vector<double> usage_;
  double halflife_s_ = 0.0;
  double last_advance_s_ = 0.0;
};

}  // namespace msp::sched
