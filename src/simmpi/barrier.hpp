// Abortable reusable barrier.
//
// std::barrier cannot be interrupted: if one rank throws while the others
// are parked at a phase boundary, the run would deadlock. This barrier
// releases all waiters with an exception once any rank calls abort().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/error.hpp"

namespace msp::sim {

/// Thrown in every rank parked at (or later arriving at) an aborted barrier.
class Aborted : public Error {
 public:
  Aborted() : Error("simulated run aborted by another rank's failure") {}
};

class AbortableBarrier {
 public:
  explicit AbortableBarrier(std::size_t parties) : parties_(parties) {
    MSP_CHECK_MSG(parties >= 1, "barrier needs at least one party");
  }

  /// Park until all `parties` ranks arrive. Throws Aborted if the run died.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw Aborted();
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation || aborted_; });
    if (aborted_) throw Aborted();
  }

  /// Release everyone with an exception; subsequent arrivals throw too.
  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace msp::sim
