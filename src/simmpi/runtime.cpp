#include "simmpi/runtime.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "simmpi/shared.hpp"
#include "util/error.hpp"

namespace msp::sim {

Runtime::Runtime(int p, NetworkModel network, ComputeModel compute,
                 FaultModel faults)
    : p_(p), network_(network), compute_(compute), faults_(std::move(faults)) {
  MSP_CHECK_MSG(p >= 1, "runtime needs at least one rank");
  MSP_CHECK_MSG(p <= 4096, "runtime caps at 4096 ranks");
  for (const auto& [rank, spec] : faults_.stragglers) {
    MSP_CHECK_MSG(rank >= 0 && rank < p,
                  "fault schedule: straggler rank " << rank << " outside p="
                                                    << p);
    MSP_CHECK_MSG(spec.compute_multiplier > 0.0 &&
                      spec.network_multiplier > 0.0,
                  "fault schedule: straggler multipliers must be positive");
  }
  for (const auto& [rank, attempts] : faults_.transfer_failures) {
    MSP_CHECK_MSG(rank >= 0 && rank < p,
                  "fault schedule: transfer-failure rank " << rank
                                                           << " outside p="
                                                           << p);
    MSP_CHECK_MSG(!attempts.empty(),
                  "fault schedule: empty failure set for rank " << rank);
  }
  for (const auto& [rank, step] : faults_.crashes) {
    MSP_CHECK_MSG(rank >= 0 && rank < p,
                  "fault schedule: crash rank " << rank << " outside p=" << p);
    MSP_CHECK_MSG(step >= 0, "fault schedule: crash step must be >= 0");
  }
  MSP_CHECK_MSG(faults_.retry_timeout_s >= 0.0 &&
                    faults_.backoff_base_s >= 0.0 &&
                    faults_.crash_detection_timeout_s >= 0.0,
                "fault schedule: timeouts must be non-negative");
}

RunReport Runtime::run(const std::function<void(Comm&)>& body) const {
  detail::Shared shared(p_, network_, compute_, faults_, tracing_);
  if (checking_)
    shared.checker = std::make_unique<check::Checker>(p_, check_sink_);

  // Straggler compute slowdowns apply to the whole rank lifetime.
  if (!faults_.stragglers.empty()) {
    for (const auto& [rank, spec] : faults_.stragglers)
      shared.rank_states[static_cast<std::size_t>(rank)].clock
          .set_compute_scale(spec.compute_multiplier);
  }

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(p_));
  for (int r = 0; r < p_; ++r)
    comms.push_back(std::unique_ptr<Comm>(new Comm(shared, shared.world, r)));

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto rank_main = [&](int r) {
    try {
      body(*comms[static_cast<std::size_t>(r)]);
    } catch (const Aborted&) {
      // Another rank failed first; our own state is moot.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      shared.abort_all();
    }
  };

  if (p_ == 1) {
    // Single rank: run inline (simpler stacks in debuggers and tests).
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(p_));
    for (int r = 0; r < p_; ++r) threads.emplace_back(rank_main, r);
    for (auto& thread : threads) thread.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  RunReport report;
  report.p = p_;
  report.ranks.reserve(static_cast<std::size_t>(p_));
  for (const auto& comm : comms) report.ranks.push_back(comm->stats());
  return report;
}

}  // namespace msp::sim
