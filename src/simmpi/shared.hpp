// Internal shared state of one simulated run. Not part of the public API.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simmpi/barrier.hpp"
#include "simmpi/check.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/netmodel.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/vclock.hpp"

namespace msp::sim::detail {

struct Envelope {
  int source = -1;  ///< global rank of the sender
  int tag = -1;
  double depart_time = 0.0;
  std::vector<char> payload;
  /// Sender's vector clock at send time — the message's happens-before
  /// edge. Empty (no allocation) unless the run's checker is on.
  check::VectorClock check_clock;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Envelope> queue;
};

/// Rank-local accounting shared by every communicator view of one rank
/// (the world Comm and any split() sub-communicators).
struct RankState {
  VirtualClock clock;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t current_memory = 0;
  std::size_t peak_memory = 0;
  std::size_t memory_budget = 0;
  std::map<std::string, std::uint64_t> counters;

  // ---- fault injection (see faults.hpp) ----
  std::uint64_t transfer_attempts = 0;  ///< ordinal counter for failure sets
  std::uint64_t transfer_retries = 0;
  bool crashed = false;
  double recovery_span = 0.0;  ///< recovery work charged to other buckets
  std::vector<FaultEvent> fault_events;
  SpanLog spans;  ///< event timeline; populated only when tracing is on
};

/// The synchronization arena of one communicator (world or sub-group).
struct CollectiveGroup {
  explicit CollectiveGroup(std::vector<int> members_in)
      : members(std::move(members_in)),
        barrier(members.size()),
        slots(members.size(), nullptr),
        entry_times(members.size(), 0.0) {}

  std::vector<int> members;  ///< group rank -> global rank, ascending
  AbortableBarrier barrier;
  std::vector<const void*> slots;
  std::vector<double> entry_times;
};

struct Shared {
  Shared(int p_in, const NetworkModel& network_in,
         const ComputeModel& compute_in, const FaultModel& faults_in,
         bool tracing_in = false)
      : p(p_in),
        network(network_in),
        compute(compute_in),
        faults(faults_in),
        tracing(tracing_in),
        mailboxes(static_cast<std::size_t>(p_in)),
        rank_states(static_cast<std::size_t>(p_in)) {
    std::vector<int> everyone(static_cast<std::size_t>(p_in));
    for (int r = 0; r < p_in; ++r) everyone[static_cast<std::size_t>(r)] = r;
    world = std::make_shared<CollectiveGroup>(std::move(everyone));
    register_group(world);
    if (tracing)
      for (auto& state : rank_states) state.clock.attach_span_log(&state.spans);
  }

  /// Track every live group so a failing rank can release all parked
  /// barriers, whichever communicator they are waiting in.
  void register_group(const std::shared_ptr<CollectiveGroup>& group) {
    std::lock_guard<std::mutex> lock(groups_mutex);
    groups.push_back(group);
  }

  void abort_all() {
    std::lock_guard<std::mutex> lock(groups_mutex);
    for (auto& weak : groups) {
      if (auto group = weak.lock()) group->barrier.abort();
    }
    for (auto& box : mailboxes) box.cv.notify_all();
  }

  bool aborted() {
    return world->barrier.aborted();
  }

  int p;
  NetworkModel network;
  ComputeModel compute;
  FaultModel faults;
  bool tracing;
  /// The run's happens-before checker; null (no shadow state, hooks cost
  /// one pointer test) unless checking is enabled — see check.hpp.
  std::unique_ptr<check::Checker> checker;
  std::shared_ptr<CollectiveGroup> world;
  std::vector<Mailbox> mailboxes;
  std::vector<RankState> rank_states;
  std::mutex groups_mutex;
  std::vector<std::weak_ptr<CollectiveGroup>> groups;
};

}  // namespace msp::sim::detail
