#include "simmpi/trace_validate.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

namespace msp::sim {
namespace {

// ---- minimal JSON parser (enough for trace-event files) --------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [name, value] : members)
      if (name == key) return &value;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = at("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  std::string at(const std::string& what) const {
    std::ostringstream os;
    os << what << " (offset " << pos_ << ")";
    return os.str();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool value(JsonValue& out, std::string& error) {
    skip_ws();
    if (pos_ >= text_.size()) {
      error = at("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return object(out, error);
    if (c == '[') return array(out, error);
    if (c == '"') return string_value(out, error);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return number(out, error);
    if (literal("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    error = at("unexpected character");
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool object(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        error = at("expected object key");
        return false;
      }
      if (!string_value(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error = at("expected ':' after object key");
        return false;
      }
      ++pos_;
      JsonValue member;
      if (!value(member, error)) return false;
      out.members.emplace_back(key.text, std::move(member));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      error = at("expected ',' or '}' in object");
      return false;
    }
  }

  bool array(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!value(item, error)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      error = at("expected ',' or ']' in array");
      return false;
    }
  }

  bool string_value(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kString;
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out.text += '"'; break;
          case '\\': out.text += '\\'; break;
          case '/': out.text += '/'; break;
          case 'b': out.text += '\b'; break;
          case 'f': out.text += '\f'; break;
          case 'n': out.text += '\n'; break;
          case 'r': out.text += '\r'; break;
          case 't': out.text += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              error = at("truncated \\u escape");
              return false;
            }
            for (int k = 0; k < 4; ++k) {
              const unsigned char digit =
                  static_cast<unsigned char>(text_[pos_ + 1 + k]);
              if (!std::isxdigit(digit)) {
                error = at("bad \\u escape");
                return false;
              }
            }
            // Validation only needs well-formedness, not the code point.
            out.text += '?';
            pos_ += 4;
            break;
          }
          default:
            error = at("unknown escape character");
            return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        error = at("raw control character in string");
        return false;
      }
      out.text += c;
      ++pos_;
    }
    error = at("unterminated string");
    return false;
  }

  bool number(JsonValue& out, std::string& error) {
    out.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      out.number = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      error = at("malformed number");
      return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool get_int(const JsonValue& object, const std::string& key, long long& out) {
  const JsonValue* v = object.find(key);
  if (!v || v->type != JsonValue::Type::kNumber) return false;
  out = static_cast<long long>(v->number);
  return static_cast<double>(out) == v->number;
}

}  // namespace

std::string validate_chrome_trace(const std::string& json) {
  JsonValue root;
  std::string error;
  if (!JsonParser(json).parse(root, error)) return "not valid JSON: " + error;
  if (root.type != JsonValue::Type::kObject)
    return "top level is not a JSON object";
  const JsonValue* events = root.find("traceEvents");
  if (!events || events->type != JsonValue::Type::kArray)
    return "missing \"traceEvents\" array";

  struct LaneState {
    double last_ts = -1.0;
    double clock_open_until = 0.0;  // end of the previous clock-lane X span
  };
  std::map<std::pair<long long, long long>, LaneState> lanes;

  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& event = events->items[i];
    std::ostringstream where;
    where << "event " << i << ": ";
    if (event.type != JsonValue::Type::kObject)
      return where.str() + "not an object";
    const JsonValue* ph = event.find("ph");
    if (!ph || ph->type != JsonValue::Type::kString)
      return where.str() + "missing string \"ph\"";
    long long pid = 0;
    if (!get_int(event, "pid", pid))
      return where.str() + "missing integer \"pid\"";
    if (ph->text == "M") continue;  // metadata carries no timestamp
    if (ph->text != "X" && ph->text != "i")
      return where.str() + "unexpected phase \"" + ph->text + "\"";

    long long tid = 0;
    if (!get_int(event, "tid", tid))
      return where.str() + "missing integer \"tid\"";
    const JsonValue* ts = event.find("ts");
    if (!ts || ts->type != JsonValue::Type::kNumber)
      return where.str() + "missing numeric \"ts\"";
    if (ts->number < 0.0) return where.str() + "negative \"ts\"";
    const JsonValue* name = event.find("name");
    if (!name || name->type != JsonValue::Type::kString)
      return where.str() + "missing string \"name\"";

    // Optional span-index id (`args.i`) — written by to_chrome_trace so
    // simcheck reports can cite events as trace#N. Optional so hand-written
    // and older traces still validate, but when present it must be a
    // non-negative integer.
    if (const JsonValue* args = event.find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      if (args->find("i") != nullptr) {
        long long index = -1;
        if (!get_int(*args, "i", index) || index < 0)
          return where.str() + "\"args.i\" is not a non-negative integer";
      }
    }

    LaneState& lane = lanes[{pid, tid}];
    if (ts->number < lane.last_ts)
      return where.str() + "timestamps not monotone on rank " +
             std::to_string(pid) + " lane " + std::to_string(tid);
    lane.last_ts = ts->number;

    if (ph->text == "X") {
      const JsonValue* dur = event.find("dur");
      if (!dur || dur->type != JsonValue::Type::kNumber)
        return where.str() + "\"X\" event missing numeric \"dur\"";
      if (dur->number < 0.0) return where.str() + "negative \"dur\"";
      if (tid == 0) {
        // Flat clock lane: spans must not overlap. ts and dur are rounded
        // to 1e-3 µs independently, so an adjacent pair can disagree by up
        // to one rounding unit on each side; 2e-3 covers exactly that and
        // still catches any real (>= one-nanosecond) overlap.
        if (ts->number + 2e-3 < lane.clock_open_until)
          return where.str() + "clock-lane spans overlap on rank " +
                 std::to_string(pid);
        lane.clock_open_until = ts->number + dur->number;
      }
    }
  }
  return {};
}

}  // namespace msp::sim
