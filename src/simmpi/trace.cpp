#include "simmpi/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/json.hpp"

namespace msp::sim {
namespace {

/// Fixed-format virtual-time rendering for the trace exports. Virtual times
/// are deterministic doubles, so a fixed precision makes the rendered bytes
/// deterministic too; 9 decimal digits of a second = nanosecond resolution,
/// far below the model's smallest cost (shm latency, 1 µs).
std::string fixed9(double value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(9) << value;
  return os.str();
}

/// Microseconds with ns resolution — Chrome trace `ts`/`dur` are in µs.
std::string micros(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << seconds * 1e6;
  return os.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* lane_name(int lane) {
  switch (lane) {
    case 0: return "clock";
    case 1: return "transfers";
    case 2: return "faults";
    case 3: return "serve";
    case 4: return "sched";
  }
  return "?";
}

}  // namespace

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kIo: return "io";
    case SpanKind::kRgetWait: return "rget-wait";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kRecoveryWait: return "recovery-wait";
    case SpanKind::kMarker: return "marker";
    case SpanKind::kServeIdle: return "serve-idle";
    case SpanKind::kRgetIssue: return "rget-issue";
    case SpanKind::kFaultRetry: return "fault-retry";
    case SpanKind::kFaultCrash: return "fault-crash";
    case SpanKind::kFaultRecovery: return "fault-recovery";
    case SpanKind::kServeAdmit: return "serve-admit";
    case SpanKind::kServeShed: return "serve-shed";
    case SpanKind::kServeDispatch: return "serve-dispatch";
    case SpanKind::kServePublish: return "serve-publish";
    case SpanKind::kServeRouteSkip: return "serve-route-skip";
    case SpanKind::kSchedSubmit: return "sched-submit";
    case SpanKind::kSchedStart: return "sched-start";
    case SpanKind::kSchedBackfill: return "sched-backfill";
    case SpanKind::kSchedPreempt: return "sched-preempt";
    case SpanKind::kSchedComplete: return "sched-complete";
    case SpanKind::kSchedSlice: return "sched-slice";
  }
  return "?";
}

int span_lane(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRgetIssue:
      return 1;
    case SpanKind::kFaultRetry:
    case SpanKind::kFaultCrash:
    case SpanKind::kFaultRecovery:
      return 2;
    case SpanKind::kServeAdmit:
    case SpanKind::kServeShed:
    case SpanKind::kServeDispatch:
    case SpanKind::kServePublish:
    case SpanKind::kServeRouteSkip:
      return 3;
    case SpanKind::kSchedSubmit:
    case SpanKind::kSchedStart:
    case SpanKind::kSchedBackfill:
    case SpanKind::kSchedPreempt:
    case SpanKind::kSchedComplete:
    case SpanKind::kSchedSlice:
      return 4;
    default:
      return 0;
  }
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

double RankStats::masking_efficiency() const {
  if (rget_issued_seconds <= 0.0) return 0.0;
  return rget_overlapped_seconds / rget_issued_seconds;
}

double RunReport::total_time() const {
  double latest = 0.0;
  for (const RankStats& r : ranks) latest = std::max(latest, r.total_time);
  return latest;
}

double RunReport::max_compute() const {
  double peak = 0.0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.compute_seconds);
  return peak;
}

double RunReport::sum_compute() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.compute_seconds;
  return total;
}

double RunReport::mean_residual_over_compute() const {
  // Aggregate ratio: every rank's waits count, whether or not it computed
  // (see the header for the semantics; the old per-rank mean silently
  // dropped zero-compute ranks, e.g. crashed ones).
  double waits = 0.0;
  double compute = 0.0;
  for (const RankStats& r : ranks) {
    waits += r.residual_comm_seconds + r.sync_wait_seconds;
    compute += r.compute_seconds;
  }
  return compute <= 0.0 ? 0.0 : waits / compute;
}

double RunReport::masking_efficiency() const {
  double issued = 0.0;
  double overlapped = 0.0;
  for (const RankStats& r : ranks) {
    issued += r.rget_issued_seconds;
    overlapped += r.rget_overlapped_seconds;
  }
  return issued <= 0.0 ? 0.0 : overlapped / issued;
}

double RunReport::masking_saving_estimate() const {
  double unmasked_estimate = 0.0;
  for (const RankStats& r : ranks)
    unmasked_estimate = std::max(unmasked_estimate,
                                 r.total_time + r.rget_overlapped_seconds);
  if (unmasked_estimate <= 0.0) return 0.0;
  return (unmasked_estimate - total_time()) / unmasked_estimate;
}

std::uint64_t RunReport::sum_counter(const std::string& name) const {
  std::uint64_t total = 0;
  for (const RankStats& r : ranks) {
    auto it = r.counters.find(name);
    if (it != r.counters.end()) total += it->second;
  }
  return total;
}

std::size_t RunReport::max_peak_memory() const {
  std::size_t peak = 0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.peak_memory_bytes);
  return peak;
}

double RunReport::serve_idle_seconds() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.idle_seconds;
  return total;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRetry: return "retry";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecovery: return "recovery";
  }
  return "?";
}

std::uint64_t RunReport::total_transfer_retries() const {
  std::uint64_t total = 0;
  for (const RankStats& r : ranks) total += r.transfer_retries;
  return total;
}

double RunReport::total_recovery_seconds() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.recovery_seconds;
  return total;
}

std::vector<int> RunReport::crashed_ranks() const {
  std::vector<int> dead;
  for (const RankStats& r : ranks)
    if (r.crashed) dead.push_back(r.rank);
  return dead;
}

bool RunReport::has_fault_activity() const {
  for (const RankStats& r : ranks) {
    if (r.crashed || r.transfer_retries != 0 || r.recovery_seconds != 0.0 ||
        !r.fault_events.empty())
      return true;
  }
  return false;
}

std::string RunReport::to_csv(CsvFaultColumns fault_columns) const {
  // Collect the union of counter names so every row has the same columns.
  std::vector<std::string> names;
  for (const RankStats& r : ranks)
    for (const auto& [name, value] : r.counters)
      if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
  std::sort(names.begin(), names.end());

  // kAuto: fault columns appear only when something actually happened, so a
  // failure-free run renders byte-identically to a run of the pre-fault
  // layer (the zero-cost-when-disabled contract). Comparisons mixing faulty
  // and clean runs must pass kInclude for both files so the schemas align.
  const bool faults = fault_columns == CsvFaultColumns::kInclude ||
                      (fault_columns == CsvFaultColumns::kAuto &&
                       has_fault_activity());

  std::ostringstream os;
  os << "rank,total_s,compute_s,io_s,comm_issued_s,residual_s,sync_s,idle_s,"
        "rget_issued_s,rget_overlap_s,bytes_sent,bytes_received,peak_memory";
  if (faults) os << ",retries,recovery_s,crashed";
  for (const auto& name : names) os << ',' << csv_escape(name);
  os << '\n';
  os << std::fixed << std::setprecision(6);
  for (const RankStats& r : ranks) {
    os << r.rank << ',' << r.total_time << ',' << r.compute_seconds << ','
       << r.io_seconds << ',' << r.comm_issued_seconds << ','
       << r.residual_comm_seconds << ',' << r.sync_wait_seconds << ','
       << r.idle_seconds << ','
       << r.rget_issued_seconds << ',' << r.rget_overlapped_seconds << ','
       << r.bytes_sent << ',' << r.bytes_received << ',' << r.peak_memory_bytes;
    if (faults)
      os << ',' << r.transfer_retries << ',' << r.recovery_seconds << ','
         << (r.crashed ? 1 : 0);
    for (const auto& name : names) {
      const auto it = r.counters.find(name);
      os << ',' << (it == r.counters.end() ? 0 : it->second);
    }
    os << '\n';
  }
  return os.str();
}

std::string RunReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.field("p", p);
  json.field("total_time_s", total_time());
  json.field("max_compute_s", max_compute());
  json.field("sum_compute_s", sum_compute());
  json.field("mean_residual_over_compute", mean_residual_over_compute());
  json.field("masking_efficiency", masking_efficiency());
  json.field("masking_saving_estimate", masking_saving_estimate());
  json.field("serve_idle_s", serve_idle_seconds());
  json.field("max_peak_memory_bytes", max_peak_memory());

  // Counter sums, name-sorted (the union the CSV columns carry).
  std::map<std::string, std::uint64_t> sums;
  for (const RankStats& r : ranks)
    for (const auto& [name, value] : r.counters) sums[name] += value;
  json.key("counters").begin_object();
  for (const auto& [name, value] : sums) json.field(name, value);
  json.end_object();

  if (has_fault_activity()) {
    json.key("faults").begin_object();
    json.field("transfer_retries", total_transfer_retries());
    json.field("recovery_s", total_recovery_seconds());
    json.key("crashed_ranks").begin_array();
    for (const int r : crashed_ranks()) json.value(r);
    json.end_array();
    json.end_object();
  }

  json.key("ranks").begin_array();
  for (const RankStats& r : ranks) {
    json.begin_object();
    json.field("rank", r.rank);
    json.field("total_s", r.total_time);
    json.field("compute_s", r.compute_seconds);
    json.field("io_s", r.io_seconds);
    json.field("comm_issued_s", r.comm_issued_seconds);
    json.field("residual_s", r.residual_comm_seconds);
    json.field("sync_s", r.sync_wait_seconds);
    if (r.idle_seconds != 0.0) json.field("idle_s", r.idle_seconds);
    json.field("rget_issued_s", r.rget_issued_seconds);
    json.field("rget_overlap_s", r.rget_overlapped_seconds);
    json.field("bytes_sent", r.bytes_sent);
    json.field("bytes_received", r.bytes_received);
    json.field("peak_memory", r.peak_memory_bytes);
    if (has_fault_activity()) {
      json.field("retries", r.transfer_retries);
      json.field("recovery_s", r.recovery_seconds);
      json.field("crashed", r.crashed);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string RunReport::to_chrome_trace() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ',';
    first = false;
    os << '\n' << event;
  };

  for (const RankStats& r : ranks) {
    // Process/thread metadata: one pid per rank, one tid per populated lane.
    bool lane_used[5] = {false, false, false, false, false};
    for (const Span& span : r.spans) lane_used[span_lane(span.kind)] = true;
    lane_used[0] = true;  // the clock lane always exists
    {
      std::ostringstream meta;
      meta << "{\"ph\":\"M\",\"pid\":" << r.rank
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank "
           << r.rank << "\"}}";
      emit(meta.str());
    }
    for (int lane = 0; lane < 5; ++lane) {
      if (!lane_used[lane]) continue;
      std::ostringstream meta;
      meta << "{\"ph\":\"M\",\"pid\":" << r.rank << ",\"tid\":" << lane
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << lane_name(lane) << "\"}}";
      emit(meta.str());
    }

    for (std::size_t i = 0; i < r.spans.size(); ++i) {
      const Span& span = r.spans[i];
      const int lane = span_lane(span.kind);
      const std::string name =
          span.name.empty() ? span_kind_name(span.kind) : span.name;
      // args.i is the span's index on the rank's timeline — the stable id
      // that simcheck violation reports cite as `trace#N`, so a report
      // links directly to the event in the viewer.
      // Serve- and sched-lane control events are instants too (begin ==
      // end), so they render like markers rather than zero-duration slices.
      std::ostringstream event;
      if (span.kind == SpanKind::kMarker || lane == 3 || lane == 4) {
        event << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << r.rank
              << ",\"tid\":" << lane << ",\"ts\":" << micros(span.begin)
              << ",\"cat\":\"" << span_kind_name(span.kind) << "\",\"name\":\""
              << json_escape(name) << "\",\"args\":{\"i\":" << i << "}}";
      } else {
        event << "{\"ph\":\"X\",\"pid\":" << r.rank << ",\"tid\":" << lane
              << ",\"ts\":" << micros(span.begin) << ",\"dur\":"
              << micros(span.end - span.begin) << ",\"cat\":\""
              << span_kind_name(span.kind) << "\",\"name\":\""
              << json_escape(name) << "\",\"args\":{\"i\":" << i << "}}";
      }
      emit(event.str());
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string RunReport::to_iteration_csv() const {
  std::ostringstream os;
  os << "rank,segment,label,begin_s,end_s,compute_s,io_s,rget_wait_s,"
        "sync_wait_s,recovery_s,rget_issued_s\n";
  for (const RankStats& r : ranks) {
    // Segment boundaries: the rank's markers, in record order. A leading
    // "(init)" segment covers anything before the first marker; with no
    // markers at all the whole run is one "(run)" segment.
    struct Segment {
      std::string label;
      double begin = 0.0;
      double end = 0.0;
      double buckets[5] = {0, 0, 0, 0, 0};  // compute, io, rget, sync, recovery
      double issued = 0.0;
    };
    std::vector<Segment> segments;
    for (const Span& span : r.spans) {
      if (span.kind != SpanKind::kMarker) continue;
      if (segments.empty() && span.begin > 0.0)
        segments.push_back({"(init)", 0.0, span.begin, {}, 0.0});
      else if (!segments.empty())
        segments.back().end = span.begin;
      segments.push_back({span.name.empty() ? "marker" : span.name, span.begin,
                          r.total_time, {}, 0.0});
    }
    if (segments.empty())
      segments.push_back({"(run)", 0.0, r.total_time, {}, 0.0});

    // Attribute spans to segments by begin time (clock spans never straddle
    // a marker: markers are recorded between charges).
    auto segment_of = [&](double t) -> Segment& {
      std::size_t k = segments.size() - 1;
      while (k > 0 && segments[k].begin > t) --k;
      return segments[k];
    };
    for (const Span& span : r.spans) {
      Segment& segment = segment_of(span.begin);
      const double duration = span.end - span.begin;
      switch (span.kind) {
        case SpanKind::kCompute: segment.buckets[0] += duration; break;
        case SpanKind::kIo: segment.buckets[1] += duration; break;
        case SpanKind::kRgetWait: segment.buckets[2] += duration; break;
        case SpanKind::kBarrier: segment.buckets[3] += duration; break;
        case SpanKind::kRecoveryWait: segment.buckets[4] += duration; break;
        case SpanKind::kRgetIssue: segment.issued += duration; break;
        default: break;  // markers delimit; fault spans mirror kRecoveryWait
      }
    }

    for (std::size_t k = 0; k < segments.size(); ++k) {
      const Segment& segment = segments[k];
      os << r.rank << ',' << k << ',' << csv_escape(segment.label) << ','
         << fixed9(segment.begin) << ',' << fixed9(segment.end);
      for (const double bucket : segment.buckets) os << ',' << fixed9(bucket);
      os << ',' << fixed9(segment.issued) << '\n';
    }
  }
  return os.str();
}

std::string RunReport::to_string() const {
  const bool faults = has_fault_activity();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "p=" << p << " total=" << total_time() << "s\n";
  for (const RankStats& r : ranks) {
    os << "  rank " << r.rank << ": t=" << r.total_time
       << " compute=" << r.compute_seconds << " io=" << r.io_seconds
       << " residual=" << r.residual_comm_seconds
       << " sync=" << r.sync_wait_seconds
       << " peak_mem=" << r.peak_memory_bytes;
    if (faults) {
      os << " retries=" << r.transfer_retries
         << " recovery=" << r.recovery_seconds;
      if (r.crashed) os << " CRASHED";
    }
    os << '\n';
    for (const FaultEvent& event : r.fault_events) {
      os << std::setprecision(6) << "    fault[" << fault_kind_name(event.kind)
         << "] t=" << event.time << " +" << event.seconds << "s "
         << event.detail << '\n'
         << std::setprecision(3);
    }
  }
  return os.str();
}

}  // namespace msp::sim
