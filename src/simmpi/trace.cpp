#include "simmpi/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace msp::sim {

double RunReport::total_time() const {
  double latest = 0.0;
  for (const RankStats& r : ranks) latest = std::max(latest, r.total_time);
  return latest;
}

double RunReport::max_compute() const {
  double peak = 0.0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.compute_seconds);
  return peak;
}

double RunReport::sum_compute() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.compute_seconds;
  return total;
}

double RunReport::mean_residual_over_compute() const {
  if (ranks.empty()) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (const RankStats& r : ranks) {
    if (r.compute_seconds <= 0.0) continue;
    total += (r.residual_comm_seconds + r.sync_wait_seconds) / r.compute_seconds;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

std::uint64_t RunReport::sum_counter(const std::string& name) const {
  std::uint64_t total = 0;
  for (const RankStats& r : ranks) {
    auto it = r.counters.find(name);
    if (it != r.counters.end()) total += it->second;
  }
  return total;
}

std::size_t RunReport::max_peak_memory() const {
  std::size_t peak = 0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.peak_memory_bytes);
  return peak;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRetry: return "retry";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecovery: return "recovery";
  }
  return "?";
}

std::uint64_t RunReport::total_transfer_retries() const {
  std::uint64_t total = 0;
  for (const RankStats& r : ranks) total += r.transfer_retries;
  return total;
}

double RunReport::total_recovery_seconds() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.recovery_seconds;
  return total;
}

std::vector<int> RunReport::crashed_ranks() const {
  std::vector<int> dead;
  for (const RankStats& r : ranks)
    if (r.crashed) dead.push_back(r.rank);
  return dead;
}

bool RunReport::has_fault_activity() const {
  for (const RankStats& r : ranks) {
    if (r.crashed || r.transfer_retries != 0 || r.recovery_seconds != 0.0 ||
        !r.fault_events.empty())
      return true;
  }
  return false;
}

std::string RunReport::to_csv() const {
  // Collect the union of counter names so every row has the same columns.
  std::vector<std::string> names;
  for (const RankStats& r : ranks)
    for (const auto& [name, value] : r.counters)
      if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
  std::sort(names.begin(), names.end());

  // Fault columns appear only when something actually happened: a
  // failure-free run renders byte-identically to a run of the pre-fault
  // layer (the zero-cost-when-disabled contract).
  const bool faults = has_fault_activity();

  std::ostringstream os;
  os << "rank,total_s,compute_s,io_s,comm_issued_s,residual_s,sync_s,"
        "bytes_sent,bytes_received,peak_memory";
  if (faults) os << ",retries,recovery_s,crashed";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  os << std::fixed << std::setprecision(6);
  for (const RankStats& r : ranks) {
    os << r.rank << ',' << r.total_time << ',' << r.compute_seconds << ','
       << r.io_seconds << ',' << r.comm_issued_seconds << ','
       << r.residual_comm_seconds << ',' << r.sync_wait_seconds << ','
       << r.bytes_sent << ',' << r.bytes_received << ',' << r.peak_memory_bytes;
    if (faults)
      os << ',' << r.transfer_retries << ',' << r.recovery_seconds << ','
         << (r.crashed ? 1 : 0);
    for (const auto& name : names) {
      const auto it = r.counters.find(name);
      os << ',' << (it == r.counters.end() ? 0 : it->second);
    }
    os << '\n';
  }
  return os.str();
}

std::string RunReport::to_string() const {
  const bool faults = has_fault_activity();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "p=" << p << " total=" << total_time() << "s\n";
  for (const RankStats& r : ranks) {
    os << "  rank " << r.rank << ": t=" << r.total_time
       << " compute=" << r.compute_seconds << " io=" << r.io_seconds
       << " residual=" << r.residual_comm_seconds
       << " sync=" << r.sync_wait_seconds << " peak_mem=" << r.peak_memory_bytes;
    if (faults) {
      os << " retries=" << r.transfer_retries
         << " recovery=" << r.recovery_seconds;
      if (r.crashed) os << " CRASHED";
    }
    os << '\n';
    for (const FaultEvent& event : r.fault_events) {
      os << std::setprecision(6) << "    fault[" << fault_kind_name(event.kind)
         << "] t=" << event.time << " +" << event.seconds << "s "
         << event.detail << '\n'
         << std::setprecision(3);
    }
  }
  return os.str();
}

}  // namespace msp::sim
