#include "simmpi/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace msp::sim {

double RunReport::total_time() const {
  double latest = 0.0;
  for (const RankStats& r : ranks) latest = std::max(latest, r.total_time);
  return latest;
}

double RunReport::max_compute() const {
  double peak = 0.0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.compute_seconds);
  return peak;
}

double RunReport::sum_compute() const {
  double total = 0.0;
  for (const RankStats& r : ranks) total += r.compute_seconds;
  return total;
}

double RunReport::mean_residual_over_compute() const {
  if (ranks.empty()) return 0.0;
  double total = 0.0;
  std::size_t counted = 0;
  for (const RankStats& r : ranks) {
    if (r.compute_seconds <= 0.0) continue;
    total += (r.residual_comm_seconds + r.sync_wait_seconds) / r.compute_seconds;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

std::uint64_t RunReport::sum_counter(const std::string& name) const {
  std::uint64_t total = 0;
  for (const RankStats& r : ranks) {
    auto it = r.counters.find(name);
    if (it != r.counters.end()) total += it->second;
  }
  return total;
}

std::size_t RunReport::max_peak_memory() const {
  std::size_t peak = 0;
  for (const RankStats& r : ranks) peak = std::max(peak, r.peak_memory_bytes);
  return peak;
}

std::string RunReport::to_csv() const {
  // Collect the union of counter names so every row has the same columns.
  std::vector<std::string> names;
  for (const RankStats& r : ranks)
    for (const auto& [name, value] : r.counters)
      if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
  std::sort(names.begin(), names.end());

  std::ostringstream os;
  os << "rank,total_s,compute_s,io_s,comm_issued_s,residual_s,sync_s,"
        "bytes_sent,bytes_received,peak_memory";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  os << std::fixed << std::setprecision(6);
  for (const RankStats& r : ranks) {
    os << r.rank << ',' << r.total_time << ',' << r.compute_seconds << ','
       << r.io_seconds << ',' << r.comm_issued_seconds << ','
       << r.residual_comm_seconds << ',' << r.sync_wait_seconds << ','
       << r.bytes_sent << ',' << r.bytes_received << ',' << r.peak_memory_bytes;
    for (const auto& name : names) {
      const auto it = r.counters.find(name);
      os << ',' << (it == r.counters.end() ? 0 : it->second);
    }
    os << '\n';
  }
  return os.str();
}

std::string RunReport::to_string() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "p=" << p << " total=" << total_time() << "s\n";
  for (const RankStats& r : ranks) {
    os << "  rank " << r.rank << ": t=" << r.total_time
       << " compute=" << r.compute_seconds << " io=" << r.io_seconds
       << " residual=" << r.residual_comm_seconds
       << " sync=" << r.sync_wait_seconds << " peak_mem=" << r.peak_memory_bytes
       << '\n';
  }
  return os.str();
}

}  // namespace msp::sim
