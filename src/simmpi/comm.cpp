#include "simmpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <utility>

#include "simmpi/check.hpp"
#include "simmpi/shared.hpp"

namespace msp::sim {

Comm::Comm(detail::Shared& shared,
           std::shared_ptr<detail::CollectiveGroup> group, int group_rank)
    : shared_(shared),
      group_(std::move(group)),
      group_rank_(group_rank),
      global_rank_(group_->members[static_cast<std::size_t>(group_rank)]),
      state_(shared.rank_states[static_cast<std::size_t>(global_rank_)]) {}

int Comm::size() const { return static_cast<int>(group_->members.size()); }

int Comm::global_rank_of(int group_rank) const {
  MSP_CHECK_MSG(group_rank >= 0 && group_rank < size(),
                "rank " << group_rank << " outside communicator of size "
                        << size());
  return group_->members[static_cast<std::size_t>(group_rank)];
}

VirtualClock& Comm::clock() { return state_.clock; }
const VirtualClock& Comm::clock() const { return state_.clock; }

const NetworkModel& Comm::network() const { return shared_.network; }

const ComputeModel& Comm::compute_model() const { return shared_.compute; }

const FaultModel& Comm::faults() const { return shared_.faults; }

check::Checker* Comm::checker() const { return shared_.checker.get(); }

void Comm::pay_transfer_faults(const char* what) {
  const FaultModel& faults = shared_.faults;
  if (!faults.has_transfer_failures(global_rank_)) return;
  int retry = 0;
  while (faults.transfer_fails(global_rank_, state_.transfer_attempts)) {
    const std::uint64_t attempt = state_.transfer_attempts++;
    ++state_.transfer_retries;
    const double delay = faults.retry_delay(retry++);
    state_.clock.charge_recovery(delay);
    const std::string detail = std::string(what) + " attempt " +
                               std::to_string(attempt) +
                               " failed, retrying";
    state_.fault_events.push_back(
        FaultEvent{FaultKind::kRetry, state_.clock.now(), delay, detail});
    if (state_.clock.tracing())
      state_.spans.push_back({SpanKind::kFaultRetry,
                              state_.clock.now() - delay, state_.clock.now(),
                              detail});
  }
  ++state_.transfer_attempts;  // the attempt that goes through
}

double Comm::fault_network_scale(int global_src, int global_dst) const {
  const FaultModel& faults = shared_.faults;
  if (faults.stragglers.empty()) return 1.0;
  return std::max(faults.network_multiplier(global_src),
                  faults.network_multiplier(global_dst));
}

void Comm::mark_crashed(const std::string& detail) {
  state_.crashed = true;
  state_.fault_events.push_back(
      FaultEvent{FaultKind::kCrash, state_.clock.now(), 0.0, detail});
  if (state_.clock.tracing())
    state_.spans.push_back({SpanKind::kFaultCrash, state_.clock.now(),
                            state_.clock.now(), detail});
}

void Comm::charge_recovery(double seconds, const std::string& detail) {
  state_.clock.charge_recovery(seconds);
  state_.fault_events.push_back(
      FaultEvent{FaultKind::kRecovery, state_.clock.now(), seconds, detail});
  if (state_.clock.tracing())
    state_.spans.push_back({SpanKind::kFaultRecovery,
                            state_.clock.now() - seconds, state_.clock.now(),
                            detail});
}

void Comm::note_recovery_span(double seconds, const std::string& detail) {
  state_.recovery_span += seconds;
  state_.fault_events.push_back(
      FaultEvent{FaultKind::kRecovery, state_.clock.now(), seconds, detail});
  if (state_.clock.tracing())
    state_.spans.push_back(
        {SpanKind::kFaultRecovery,
         std::max(0.0, state_.clock.now() - seconds), state_.clock.now(),
         detail});
}

const void* const* Comm::post_and_collect(const void* mine, bool checked) {
  if (checked && shared_.checker) shared_.checker->post_clock(global_rank_);
  group_->slots[static_cast<std::size_t>(group_rank_)] = mine;
  group_->entry_times[static_cast<std::size_t>(group_rank_)] =
      state_.clock.now();
  group_->barrier.arrive_and_wait();
  return group_->slots.data();
}

double Comm::max_posted_entry() const {
  double latest = 0.0;
  for (double t : group_->entry_times) latest = std::max(latest, t);
  return latest;
}

void Comm::finish_collective(double cost, bool checked) {
  // Happens-before edge of the completed collective: every member posted
  // its clock before the first rendezvous, so the join is stable here (the
  // closing rendezvous below keeps the snapshots from being repopulated).
  if (checked && shared_.checker)
    shared_.checker->join_group(group_->members, global_rank_);
  const double completion = max_posted_entry() + cost;
  state_.clock.sync_until(max_posted_entry());
  state_.clock.note_comm_issued(cost);
  state_.clock.wait_until(completion);
  // Second rendezvous: nobody may repopulate the slots for the next
  // collective until everyone has read them.
  group_->barrier.arrive_and_wait();
}

double Comm::collective_cost(std::size_t bytes) const {
  return shared_.network.allreduce_cost(bytes, size());
}

std::unique_ptr<Comm> Comm::split(int color) {
  struct Claim {
    int color;
  };
  const Claim mine{color};
  const void* const* slots = post_and_collect(&mine);

  // Everyone derives the same member lists (in group-rank order, mapped to
  // global ranks, so sub-group rank order is deterministic).
  std::map<int, std::vector<int>> members_by_color;
  int my_subrank = -1;
  for (int r = 0; r < size(); ++r) {
    const int their_color = static_cast<const Claim*>(slots[r])->color;
    auto& members = members_by_color[their_color];
    if (r == group_rank_) my_subrank = static_cast<int>(members.size());
    members.push_back(global_rank_of(r));
  }
  finish_collective(collective_cost(sizeof(int)));

  // The first member of each color allocates the group; the others copy
  // the shared_ptr out of the leader's slot in a second exchange round.
  std::shared_ptr<detail::CollectiveGroup> my_group;
  const std::vector<int>& my_members = members_by_color.at(color);
  const bool leader = my_members.front() == global_rank_;
  if (leader) {
    my_group = std::make_shared<detail::CollectiveGroup>(my_members);
    shared_.register_group(my_group);
  }
  const void* const* group_slots =
      post_and_collect(leader ? &my_group : nullptr);
  if (!leader) {
    // The leader is the first member of our color; locate its slot.
    for (int r = 0; r < size(); ++r) {
      if (global_rank_of(r) == my_members.front()) {
        my_group =
            *static_cast<const std::shared_ptr<detail::CollectiveGroup>*>(
                group_slots[r]);
        break;
      }
    }
  }
  finish_collective(shared_.network.barrier_cost(size()));
  MSP_CHECK_MSG(my_group != nullptr, "split failed to locate the sub-group");
  return std::unique_ptr<Comm>(new Comm(shared_, my_group, my_subrank));
}

void Comm::barrier() {
  post_and_collect(nullptr);
  finish_collective(shared_.network.barrier_cost(size()));
}

double Comm::allreduce_max(double value) {
  const void* const* slots = post_and_collect(&value);
  double result = *static_cast<const double*>(slots[0]);
  for (int r = 1; r < size(); ++r)
    result = std::max(result, *static_cast<const double*>(slots[r]));
  finish_collective(collective_cost(sizeof(double)));
  return result;
}

double Comm::allreduce_min(double value) {
  const void* const* slots = post_and_collect(&value);
  double result = *static_cast<const double*>(slots[0]);
  for (int r = 1; r < size(); ++r)
    result = std::min(result, *static_cast<const double*>(slots[r]));
  finish_collective(collective_cost(sizeof(double)));
  return result;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  const void* const* slots = post_and_collect(&value);
  std::uint64_t result = 0;
  for (int r = 0; r < size(); ++r)
    result += *static_cast<const std::uint64_t*>(slots[r]);
  finish_collective(collective_cost(sizeof(std::uint64_t)));
  return result;
}

void Comm::allreduce_sum(std::vector<std::uint64_t>& values) {
  struct View {
    const std::uint64_t* data;
    std::size_t size;
  };
  // Reduce into a scratch copy first: ranks read each other's `values`
  // concurrently, so in-place accumulation before the closing rendezvous
  // would be a data race.
  const View mine{values.data(), values.size()};
  const void* const* slots = post_and_collect(&mine);
  std::vector<std::uint64_t> result(values.size(), 0);
  for (int r = 0; r < size(); ++r) {
    const View* view = static_cast<const View*>(slots[r]);
    MSP_CHECK_MSG(view->size == values.size(),
                  "allreduce_sum: rank " << r << " vector length mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) result[i] += view->data[i];
  }
  finish_collective(collective_cost(values.size() * sizeof(std::uint64_t)));
  values = std::move(result);
}

std::vector<std::vector<char>> Comm::alltoallv(
    const std::vector<std::vector<char>>& send) {
  MSP_CHECK_MSG(static_cast<int>(send.size()) == size(),
                "alltoallv: need one payload per rank");
  const void* const* slots = post_and_collect(&send);
  std::vector<std::vector<char>> received(static_cast<std::size_t>(size()));
  std::size_t send_bytes = 0;
  for (const auto& payload : send) send_bytes += payload.size();
  std::size_t recv_bytes = 0;
  for (int r = 0; r < size(); ++r) {
    const auto* their_send =
        static_cast<const std::vector<std::vector<char>>*>(slots[r]);
    MSP_CHECK_MSG(static_cast<int>(their_send->size()) == size(),
                  "alltoallv: rank " << r << " arity mismatch");
    received[static_cast<std::size_t>(r)] =
        (*their_send)[static_cast<std::size_t>(group_rank_)];
    recv_bytes += received[static_cast<std::size_t>(r)].size();
  }
  state_.bytes_sent += send_bytes;
  state_.bytes_received += recv_bytes;
  finish_collective(
      shared_.network.alltoallv_cost(send_bytes, recv_bytes, size()));
  return received;
}

std::vector<char> Comm::bcast(int root, const std::vector<char>& payload) {
  MSP_CHECK_MSG(root >= 0 && root < size(), "bcast: bad root " << root);
  const void* const* slots =
      post_and_collect(group_rank_ == root ? &payload : nullptr);
  const auto* source = static_cast<const std::vector<char>*>(
      slots[static_cast<std::size_t>(root)]);
  MSP_CHECK_MSG(source != nullptr, "bcast: root did not post a payload");
  std::vector<char> result = *source;
  if (group_rank_ != root) state_.bytes_received += result.size();
  if (group_rank_ == root)
    state_.bytes_sent += result.size() * static_cast<std::size_t>(size() - 1);
  finish_collective(collective_cost(result.size()));
  return result;
}

void Comm::send(int destination, int tag, std::vector<char> payload) {
  MSP_CHECK_MSG(destination >= 0 && destination < size(),
                "send: bad destination rank " << destination);
  const int global_destination = global_rank_of(destination);
  // Scheduled transient failures delay the injection (and the departure
  // time the receiver sees) by the retry cost.
  pay_transfer_faults("send");
  const double depart = state_.clock.now();
  // Eager protocol: sender pays only the injection latency.
  const bool local =
      shared_.network.same_node(global_rank_, global_destination);
  state_.clock.note_comm_issued(local ? shared_.network.shm_latency_s
                                      : shared_.network.latency_s);
  state_.bytes_sent += payload.size();
  detail::Envelope envelope{global_rank_, tag, depart, std::move(payload), {}};
  // The message carries the sender's vector clock: delivery is the
  // happens-before edge the checker orders point-to-point programs by.
  if (shared_.checker)
    envelope.check_clock = shared_.checker->on_send(global_rank_);
  detail::Mailbox& box =
      shared_.mailboxes[static_cast<std::size_t>(global_destination)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(envelope));
  }
  box.cv.notify_all();
}

Comm::Message Comm::recv(int source, int tag) {
  const int global_source = source == kAnySource ? -1 : global_rank_of(source);
  detail::Mailbox& box =
      shared_.mailboxes[static_cast<std::size_t>(global_rank_)];
  std::unique_lock<std::mutex> lock(box.mutex);
  auto match = [&]() -> std::deque<detail::Envelope>::iterator {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if ((global_source == -1 || it->source == global_source) &&
          (tag == kAnyTag || it->tag == tag))
        return it;
    }
    return box.queue.end();
  };
  auto it = match();
  while (it == box.queue.end()) {
    if (shared_.aborted()) throw Aborted();
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
    it = match();
  }
  detail::Envelope envelope = std::move(*it);
  box.queue.erase(it);
  lock.unlock();

  if (shared_.checker && !envelope.check_clock.empty())
    shared_.checker->on_recv(global_rank_, envelope.check_clock);

  const double cost =
      shared_.network.transfer_cost(envelope.payload.size(), envelope.source,
                                    global_rank_, /*concurrent=*/1) *
      fault_network_scale(envelope.source, global_rank_);
  state_.clock.note_comm_issued(cost);
  state_.clock.wait_until(envelope.depart_time + cost);
  state_.bytes_received += envelope.payload.size();

  // Translate the sender back into this communicator's rank space.
  int group_source = -1;
  for (int r = 0; r < size(); ++r) {
    if (global_rank_of(r) == envelope.source) {
      group_source = r;
      break;
    }
  }
  return Message{group_source, envelope.tag, std::move(envelope.payload)};
}

void Comm::charge_alloc(std::size_t bytes) {
  state_.current_memory += bytes;
  state_.peak_memory = std::max(state_.peak_memory, state_.current_memory);
  if (state_.memory_budget != 0 &&
      state_.current_memory > state_.memory_budget) {
    throw OutOfMemoryBudget("rank " + std::to_string(global_rank_) +
                            " exceeded its memory budget: " +
                            std::to_string(state_.current_memory) + " > " +
                            std::to_string(state_.memory_budget) + " bytes");
  }
}

void Comm::release_alloc(std::size_t bytes) {
  MSP_CHECK_MSG(bytes <= state_.current_memory,
                "release_alloc: releasing more than allocated");
  state_.current_memory -= bytes;
}

void Comm::set_memory_budget(std::size_t bytes) {
  state_.memory_budget = bytes;
}

std::size_t Comm::current_memory() const { return state_.current_memory; }

std::size_t Comm::peak_memory() const { return state_.peak_memory; }

void Comm::bump(const std::string& name, std::uint64_t delta) {
  state_.counters[name] += delta;
}

bool Comm::tracing() const { return state_.clock.tracing(); }

void Comm::trace_mark(const std::string& label) {
  if (!state_.clock.tracing()) return;
  state_.spans.push_back(
      {SpanKind::kMarker, state_.clock.now(), state_.clock.now(), label});
}

void Comm::trace_serve(SpanKind kind, const std::string& label) {
  if (!state_.clock.tracing()) return;
  MSP_CHECK_MSG(span_lane(kind) == 3,
                "trace_serve requires a serve-lane span kind");
  state_.spans.push_back({kind, state_.clock.now(), state_.clock.now(), label});
}

void Comm::trace_sched(SpanKind kind, const std::string& label) {
  if (!state_.clock.tracing()) return;
  MSP_CHECK_MSG(span_lane(kind) == 4,
                "trace_sched requires a sched-lane span kind");
  state_.spans.push_back({kind, state_.clock.now(), state_.clock.now(), label});
}

RankStats Comm::stats() const {
  RankStats stats;
  stats.rank = global_rank_;
  stats.total_time = state_.clock.now();
  stats.compute_seconds = state_.clock.compute_seconds();
  stats.io_seconds = state_.clock.io_seconds();
  stats.comm_issued_seconds = state_.clock.comm_issued_seconds();
  stats.residual_comm_seconds = state_.clock.residual_comm_seconds();
  stats.sync_wait_seconds = state_.clock.sync_wait_seconds();
  stats.idle_seconds = state_.clock.idle_seconds();
  stats.rget_issued_seconds = state_.clock.rget_issued_seconds();
  stats.rget_overlapped_seconds = state_.clock.rget_overlapped_seconds();
  stats.bytes_sent = state_.bytes_sent;
  stats.bytes_received = state_.bytes_received;
  stats.peak_memory_bytes = state_.peak_memory;
  stats.counters = state_.counters;
  stats.spans = state_.spans;
  stats.recovery_seconds =
      state_.clock.recovery_seconds() + state_.recovery_span;
  stats.transfer_retries = state_.transfer_retries;
  stats.crashed = state_.crashed;
  stats.fault_events = state_.fault_events;
  return stats;
}

// ---- Window ----

Window::Window(Comm& comm, std::span<const char> local_shard) : comm_(comm) {
  struct View {
    const char* data;
    std::size_t size;
    const std::shared_ptr<Exposure>* exposure;
  };
  const auto my_exposure = std::make_shared<Exposure>();
  // Register the exposure epoch BEFORE the collective below: the epoch's
  // initial write (the expose event) then happens-before every member's
  // construction return, so first reads are ordered by construction.
  if (check::Checker* checker = comm_.checker()) {
    check::AccessSpan expose;
    expose.rank = comm_.global_rank();
    expose.begin = expose.end = comm_.clock().now();
    expose.what = "shard exposed (window creation)";
    checker->on_expose(my_exposure, comm_.global_rank(), expose);
  }
  const View mine{local_shard.data(), local_shard.size(), &my_exposure};
  const void* const* slots = comm_.post_and_collect(&mine);
  shards_.resize(static_cast<std::size_t>(comm_.size()));
  exposures_.resize(static_cast<std::size_t>(comm_.size()));
  for (int r = 0; r < comm_.size(); ++r) {
    const View* view = static_cast<const View*>(slots[r]);
    shards_[static_cast<std::size_t>(r)] = {view->data, view->size};
    exposures_[static_cast<std::size_t>(r)] = *view->exposure;
  }
  comm_.finish_collective(comm_.network().barrier_cost(comm_.size()));
}

Window::~Window() {
  // Revoke our exposure before our storage can unwind: the exclusive lock
  // drains any reader still copying out of our bytes; once `revoked` is
  // set, late readers throw Aborted instead of reading freed memory. The
  // shared_ptr keeps the guard itself alive for those late readers.
  Exposure& mine = *exposures_[static_cast<std::size_t>(comm_.rank())];
  const std::lock_guard<std::shared_mutex> lock(mine.mutex);
  mine.revoked = true;
}

std::size_t Window::shard_size(int target) const {
  MSP_CHECK(target >= 0 && target < comm_.size());
  // Peer-state read under the owner's revocation guard: once the owner's
  // Window unwound, the cached extent describes freed storage — answer
  // Aborted (like a late rget) instead of handing out a stale size.
  Exposure& exposure = *exposures_[static_cast<std::size_t>(target)];
  const std::shared_lock<std::shared_mutex> guard(exposure.mutex);
  if (exposure.revoked) throw Aborted();
  return shards_[static_cast<std::size_t>(target)].size();
}

RmaRequest Window::rget(int target, std::vector<char>& dest,
                        int concurrent_pulls) {
  MSP_CHECK_MSG(target >= 0 && target < comm_.size(),
                "rget: bad target rank " << target);
  return rget_range(target, 0,
                    shards_[static_cast<std::size_t>(target)].size(), dest,
                    concurrent_pulls);
}

RmaRequest Window::rget_range(int target, std::size_t offset,
                              std::size_t length, std::vector<char>& dest,
                              int concurrent_pulls) {
  MSP_CHECK_MSG(target >= 0 && target < comm_.size(),
                "rget_range: bad target rank " << target);
  check::Checker* const checker = comm_.checker();
  for (const PendingGet& busy : pending_) {
    if (busy.dest != &dest) continue;
    if (checker != nullptr) {
      check::Violation violation;
      violation.kind = check::ViolationKind::kDestBufferLifetime;
      violation.first = {comm_.global_rank(), busy.begin, busy.end,
                         busy.trace_event, busy.what};
      violation.second = {comm_.global_rank(), comm_.clock().now(),
                          comm_.clock().now(), -1,
                          "second rget issued into the same destination "
                          "buffer"};
      violation.detail =
          "rget into a destination buffer that still has a pending request "
          "on it — wait() first (destination-buffer lifetime rule, comm.hpp)";
      checker->report(std::move(violation));
      break;  // sink mode continues; one report per offending issue
    }
    MSP_CHECK_MSG(busy.dest != &dest,
                  "rget into a destination buffer that still has a pending "
                  "request on it — wait() first (see the destination-buffer "
                  "lifetime rule in comm.hpp)");
  }
  // Scheduled transient failures delay the issue; the modeled transfer
  // starts only after the retries succeed.
  comm_.pay_transfer_faults("rget");
  {
    // Bounds-check and copy under the owner's exposure guard: if the
    // owner's stack is unwinding (its ~Window revokes before the storage
    // dies), we either finish the copy first or observe the revocation and
    // abort — and a revoked shard's stale extent is never consulted.
    Exposure& exposure = *exposures_[static_cast<std::size_t>(target)];
    const std::shared_lock<std::shared_mutex> guard(exposure.mutex);
    if (exposure.revoked) throw Aborted();
    const std::span<const char> full =
        shards_[static_cast<std::size_t>(target)];
    MSP_CHECK_MSG(offset <= full.size() && length <= full.size() - offset,
                  "rget_range: [" << offset << ", " << offset + length
                                  << ") exceeds shard size " << full.size());
    const std::span<const char> shard = full.subspan(offset, length);
    dest.assign(shard.begin(), shard.end());
  }
  comm_.state_.bytes_received += length;
  const double cost =
      comm_.network().transfer_cost(length, comm_.global_rank_of(target),
                                    comm_.global_rank(), concurrent_pulls) *
      comm_.fault_network_scale(comm_.global_rank_of(target),
                                comm_.global_rank());
  comm_.clock().note_comm_issued(cost);
  comm_.clock().note_rget_issued(cost);
  long long trace_event = -1;
  if (comm_.tracing()) {
    comm_.state_.spans.push_back(
        {SpanKind::kRgetIssue, comm_.clock().now(), comm_.clock().now() + cost,
         "rget " + std::to_string(length) + "B from rank " +
             std::to_string(comm_.global_rank_of(target))});
    trace_event = static_cast<long long>(comm_.state_.spans.size()) - 1;
  }
  RmaRequest request;
  request.arrival_time = comm_.clock().now() + cost;
  request.issue_cost = cost;
  request.active = true;
  request.dest = &dest;
  request.dest_data = dest.data();
  request.dest_size = dest.size();
  PendingGet pending;
  pending.dest = &dest;
  pending.begin = comm_.clock().now();
  pending.end = request.arrival_time;
  pending.trace_event = trace_event;
  if (checker != nullptr) {
    pending.what = "rget " + std::to_string(length) + "B from rank " +
                   std::to_string(comm_.global_rank_of(target));
    check::AccessSpan read;
    read.rank = comm_.global_rank();
    read.begin = pending.begin;
    read.end = pending.end;
    read.trace_event = trace_event;
    read.what = pending.what;
    checker->on_shard_read(exposures_[static_cast<std::size_t>(target)].get(),
                           comm_.global_rank(), read);
  }
  pending_.push_back(std::move(pending));
  return request;
}

void Window::wait(RmaRequest& request) {
  MSP_CHECK_MSG(request.active, "wait on an inactive RMA request");
  const auto it =
      request.dest == nullptr
          ? pending_.end()
          : std::find_if(pending_.begin(), pending_.end(),
                         [&](const PendingGet& entry) {
                           return entry.dest == request.dest;
                         });
  const bool identity_ok =
      request.dest == nullptr || (request.dest->data() == request.dest_data &&
                                  request.dest->size() == request.dest_size);
  if (!identity_ok) {
    if (check::Checker* const checker = comm_.checker()) {
      check::Violation violation;
      violation.kind = check::ViolationKind::kDestBufferLifetime;
      if (it != pending_.end())
        violation.first = {comm_.global_rank(), it->begin, it->end,
                           it->trace_event, it->what};
      else
        violation.first = {comm_.global_rank(), request.arrival_time,
                           request.arrival_time, -1, "rget issue (untracked)"};
      violation.second = {comm_.global_rank(), comm_.clock().now(),
                          comm_.clock().now(), -1,
                          "wait() observed a different buffer identity"};
      violation.detail =
          "RMA destination buffer was resized, reassigned or swapped while "
          "its request was pending (destination-buffer lifetime rule, "
          "comm.hpp)";
      checker->report(std::move(violation));
    } else {
      MSP_CHECK_MSG(identity_ok,
                    "RMA destination buffer was resized, reassigned or "
                    "swapped while its request was pending (see the "
                    "destination-buffer lifetime rule in comm.hpp)");
    }
  }
  // Masking measurement: whatever part of the modeled transfer the clock
  // already lived through (computing, mostly) was hidden; only the rest is
  // exposed as residual wait.
  const double residual =
      std::max(0.0, request.arrival_time - comm_.clock().now());
  comm_.clock().note_rget_overlapped(
      std::max(0.0, request.issue_cost - residual));
  comm_.clock().wait_until(request.arrival_time);
  request.active = false;
  if (request.dest != nullptr) {
    if (it != pending_.end()) pending_.erase(it);
    request.dest = nullptr;
  }
}

void Window::fence() {
  if (!pending_.empty()) {
    if (check::Checker* const checker = comm_.checker()) {
      const PendingGet& oldest = pending_.front();
      check::Violation violation;
      violation.kind = check::ViolationKind::kFenceWithPending;
      violation.first = {comm_.global_rank(), oldest.begin, oldest.end,
                         oldest.trace_event, oldest.what};
      violation.second = {comm_.global_rank(), comm_.clock().now(),
                          comm_.clock().now(), -1,
                          "fence() with " + std::to_string(pending_.size()) +
                              " pending request(s)"};
      violation.detail =
          "fence while requests on the window are still un-waited: wait() "
          "on every request before synchronizing";
      checker->report(std::move(violation));
      pending_.clear();  // sink mode continues past the broken epoch close
    } else {
      MSP_CHECK_MSG(pending_.empty(),
                    "fence with "
                        << pending_.size()
                        << " pending rget request(s): wait() on every "
                           "request before synchronizing");
    }
  }
  comm_.barrier();
}

void Window::note_local_write(const std::string& what) {
  if (check::Checker* const checker = comm_.checker()) {
    check::AccessSpan write;
    write.rank = comm_.global_rank();
    write.begin = write.end = comm_.clock().now();
    write.what = what;
    checker->on_shard_write(
        exposures_[static_cast<std::size_t>(comm_.rank())].get(),
        comm_.global_rank(), write);
  }
}

namespace check {

void TestBackdoor::unsynced_barrier(Comm& comm) {
  // A physical rendezvous with the same timing as Comm::barrier(), but with
  // the checker hooks suppressed: ranks really do meet (so the test can
  // sequence their actions deterministically), yet no happens-before edge
  // is recorded — modeling a driver that synchronizes through a side
  // channel the transport cannot see.
  comm.post_and_collect(nullptr, /*checked=*/false);
  comm.finish_collective(comm.shared_.network.barrier_cost(comm.size()),
                         /*checked=*/false);
}

}  // namespace check

}  // namespace msp::sim
