// Runtime: launches a simulated p-rank distributed-memory run.
//
// Each rank executes `body(Comm&)` on its own std::thread. Real data moves
// between ranks (so correctness is genuinely exercised); time is virtual
// (so a 128-rank scaling study is deterministic and runs on any host).
// An exception in any rank aborts the whole run and is rethrown here.
#pragma once

#include <functional>

#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/netmodel.hpp"
#include "simmpi/trace.hpp"

namespace msp::sim {

class Runtime {
 public:
  /// `faults` is the run's deterministic fault schedule (see faults.hpp);
  /// the default empty schedule is bit-exactly zero-cost.
  explicit Runtime(int p, NetworkModel network = {}, ComputeModel compute = {},
                   FaultModel faults = {});

  int size() const { return p_; }
  const NetworkModel& network() const { return network_; }
  const ComputeModel& compute_model() const { return compute_; }
  const FaultModel& faults() const { return faults_; }

  /// Enable span tracing for subsequent run() calls: every clock charge,
  /// wait, transfer, fault event, and driver marker is recorded on the
  /// per-rank timelines (RankStats::spans; export with
  /// RunReport::to_chrome_trace / to_iteration_csv). Off by default — the
  /// disabled path costs one null-pointer check per clock charge and
  /// changes no virtual time (DESIGN.md §5e).
  void enable_tracing(bool on = true) { tracing_ = on; }
  bool tracing_enabled() const { return tracing_; }

  /// Run one simulated program. May be called repeatedly; every call is an
  /// independent "job" with fresh clocks and mailboxes.
  RunReport run(const std::function<void(Comm&)>& body) const;

 private:
  int p_;
  NetworkModel network_;
  ComputeModel compute_;
  FaultModel faults_;
  bool tracing_ = false;
};

}  // namespace msp::sim
