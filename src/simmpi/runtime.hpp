// Runtime: launches a simulated p-rank distributed-memory run.
//
// Each rank executes `body(Comm&)` on its own std::thread. Real data moves
// between ranks (so correctness is genuinely exercised); time is virtual
// (so a 128-rank scaling study is deterministic and runs on any host).
// An exception in any rank aborts the whole run and is rethrown here.
#pragma once

#include <functional>
#include <vector>

#include "simmpi/check.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/netmodel.hpp"
#include "simmpi/trace.hpp"

namespace msp::sim {

class Runtime {
 public:
  /// `faults` is the run's deterministic fault schedule (see faults.hpp);
  /// the default empty schedule is bit-exactly zero-cost.
  explicit Runtime(int p, NetworkModel network = {}, ComputeModel compute = {},
                   FaultModel faults = {});

  int size() const { return p_; }
  const NetworkModel& network() const { return network_; }
  const ComputeModel& compute_model() const { return compute_; }
  const FaultModel& faults() const { return faults_; }

  /// Enable span tracing for subsequent run() calls: every clock charge,
  /// wait, transfer, fault event, and driver marker is recorded on the
  /// per-rank timelines (RankStats::spans; export with
  /// RunReport::to_chrome_trace / to_iteration_csv). Off by default — the
  /// disabled path costs one null-pointer check per clock charge and
  /// changes no virtual time (DESIGN.md §5e).
  void enable_tracing(bool on = true) { tracing_ = on; }
  bool tracing_enabled() const { return tracing_; }

  /// Enable the happens-before checker (simcheck, see check.hpp) for
  /// subsequent run() calls. The build default follows the MSPAR_CHECK
  /// CMake option (ON in Debug unless overridden); this call overrides it
  /// per runtime. When off, no shadow state is allocated and every hook is
  /// one null-pointer test. When on, a clean run's hits, stats and traces
  /// are bit-identical to the unchecked run.
  void enable_checking(bool on = true) { checking_ = on; }
  bool checking_enabled() const { return checking_; }

  /// Install a violation sink for subsequent run() calls: violations are
  /// appended to `sink` and the run continues, instead of the first one
  /// throwing check::CheckFailed in the offending rank. Pass nullptr to
  /// restore throw-on-detection. The sink must outlive the run() call;
  /// installing one implies enable_checking().
  void set_check_sink(std::vector<check::Violation>* sink) {
    check_sink_ = sink;
    if (sink != nullptr) checking_ = true;
  }

  /// Run one simulated program. May be called repeatedly; every call is an
  /// independent "job" with fresh clocks and mailboxes.
  RunReport run(const std::function<void(Comm&)>& body) const;

 private:
  int p_;
  NetworkModel network_;
  ComputeModel compute_;
  FaultModel faults_;
  bool tracing_ = false;
#ifdef MSPAR_CHECK_DEFAULT
  bool checking_ = true;
#else
  bool checking_ = false;
#endif
  std::vector<check::Violation>* check_sink_ = nullptr;
};

}  // namespace msp::sim
