// Network and compute cost models for the simulated cluster.
//
// The paper's testbed: 24 nodes × 8 Xeon cores, gigabit ethernet, NFS, 1 GB
// RAM per MPI process. We model that topology: ranks are packed onto nodes
// `ranks_per_node` at a time; intra-node transfers move at shared-memory
// speed, cross-node transfers share the node's single link (so 8 ranks
// fetching remote shards simultaneously — exactly what Algorithm A's ring
// step does — each see 1/8 of the wire). All costs are deterministic
// functions, so a (workload, model, p) triple fully determines every
// virtual-time result. Fault injection (stragglers, transient transfer
// failures, crashes) layers on top without breaking that contract: the
// schedule is part of the model — see faults.hpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace msp::sim {

struct NetworkModel {
  double latency_s = 50e-6;          ///< λ: per-message latency, cross-node
  double seconds_per_byte = 8.0e-9;  ///< μ: gigabit ≈ 125 MB/s
  double shm_latency_s = 1e-6;       ///< intra-node message latency
  double shm_seconds_per_byte = 0.4e-9;  ///< ≈ 2.5 GB/s memcpy-ish
  int ranks_per_node = 8;  ///< cores per node (contention cap)
  int node_count = 24;     ///< nodes in the cluster (the paper's 24)

  /// Rank placement is cyclic (round-robin across nodes), the common
  /// scheduler default on the paper's era of clusters: ranks 0..23 land on
  /// distinct nodes, rank 24 shares node 0, and so on. Consequence: runs
  /// with p ≤ node_count are entirely cross-node (as the paper's small-p
  /// results imply), and link sharing appears once p > node_count.
  int node_of(int rank) const { return rank % std::max(1, node_count); }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// How many ranks share one node's link when all p ranks pull at once
  /// (Algorithm A's ring step).
  int concurrent_pulls(int p) const {
    const int nodes = std::max(1, node_count);
    return std::min((p + nodes - 1) / nodes, std::max(1, ranks_per_node));
  }

  /// Cost of one point-to-point transfer of `bytes` from src to dst while
  /// `concurrent_on_link` ranks of the destination node are pulling data
  /// over the shared link at the same time.
  double transfer_cost(std::size_t bytes, int src, int dst,
                       int concurrent_on_link) const {
    if (same_node(src, dst))
      return shm_latency_s + static_cast<double>(bytes) * shm_seconds_per_byte;
    const double share =
        std::max(1, std::min(concurrent_on_link, ranks_per_node));
    return latency_s + static_cast<double>(bytes) * seconds_per_byte * share;
  }

  /// Synchronization cost of a p-rank barrier/fence (binomial-tree depth).
  double barrier_cost(int p) const {
    if (p <= 1) return 0.0;
    const double depth = std::ceil(std::log2(static_cast<double>(p)));
    return latency_s * depth;
  }

  /// Allreduce of `bytes` payload over p ranks (recursive doubling).
  double allreduce_cost(std::size_t bytes, int p) const {
    if (p <= 1) return 0.0;
    const double depth = std::ceil(std::log2(static_cast<double>(p)));
    return depth * (latency_s + static_cast<double>(bytes) * seconds_per_byte);
  }

  /// Alltoallv where this rank sends `send_bytes` total and receives
  /// `recv_bytes` total; pairwise-exchange algorithm, link shared per node.
  double alltoallv_cost(std::size_t send_bytes, std::size_t recv_bytes,
                        int p) const {
    if (p <= 1) return 0.0;
    const double wire = static_cast<double>(std::max(send_bytes, recv_bytes)) *
                        seconds_per_byte;
    const double share = std::min(p, ranks_per_node);
    return latency_s * (p - 1) + wire * share;
  }
};

struct ComputeModel {
  /// Cheap prefilter screen per candidate (shared-peak count only) — the
  /// X!!Tandem-style fast path; ~ρ/25, which is what makes that tool fast
  /// and what bench_quality shows it costs in sensitivity.
  double seconds_per_prefilter = 8e-6;
  /// ρ: seconds per candidate evaluation. Calibrated so the aggregate
  /// candidate rate at p=8 is of the same order as the paper's Table III
  /// (41,429 candidates/s on 8 procs → ~5.2k/s per proc → ~193 µs each;
  /// MSPolygraph's likelihood model with on-the-fly model spectra is that
  /// heavy). Real scoring work still runs — this governs virtual time only.
  double seconds_per_candidate = 193e-6;
  /// Maintaining the running top-τ list, per reported hit update.
  double seconds_per_hit_update = 0.5e-6;
  /// Input parsing (FASTA load), per database residue.
  double seconds_per_residue_load = 20e-9;
  /// Query preprocessing (binning, background estimation), per query.
  double seconds_per_query_prep = 200e-6;
  /// Computing one sequence's parent m/z during Algorithm B's sort.
  double seconds_per_mz = 100e-9;
  /// One mass-routing decision at a ring-step boundary (shard mass map
  /// lookup). A routed-away step charges only this constant — no shard
  /// fetch, no scoring.
  double seconds_per_route_check = 1e-6;
  /// Writing one hit record to the (NFS) output file.
  double seconds_per_hit_output = 2e-6;
  /// Scanning one fragment-ion-index posting during an open-search lookup
  /// (an in-cache array walk plus a counter increment — memory-bound, far
  /// below a prefilter screen, which is the whole point of the index).
  double seconds_per_posting = 25e-9;
  /// Fraction of ρ spent *generating* a candidate (fragment masses + model
  /// spectrum) as opposed to comparing it. The paper's Discussion: "a
  /// dominant fraction of the query processing time is spent on generating
  /// candidates on-the-fly" — the candidate-store strategy pays this once
  /// per stored candidate instead of once per evaluation.
  double candidate_generation_fraction = 0.5;
};

}  // namespace msp::sim
