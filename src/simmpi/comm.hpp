// Comm: the per-rank handle of the simulated distributed-memory machine.
//
// The API mirrors the MPI subset the paper's implementation uses — barrier,
// Allreduce, Alltoallv, point-to-point send/recv (for the master–worker
// baseline), one-sided windows with non-blocking gets (Algorithm A/B's
// database transport) and communicator splitting (the sub-group hybrid of
// the paper's Discussion) — plus virtual-time and memory accounting, which
// is how the simulated cluster stands in for the real one (see DESIGN.md).
//
// Threading model: each rank is a thread; rank-local state (the Comm, the
// rank's buffers) is touched only by its own thread, and all cross-rank data
// movement goes through this class, whose collective operations establish
// the necessary happens-before edges with real synchronization.
//
// A split() sub-communicator is a second view of the same rank: it shares
// the rank's virtual clock, counters and memory accounting, but its
// collectives synchronize only the sub-group's members.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "simmpi/faults.hpp"
#include "simmpi/netmodel.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/vclock.hpp"
#include "util/error.hpp"

namespace msp::sim {

namespace detail {
struct Shared;
struct CollectiveGroup;
struct RankState;
}  // namespace detail

namespace check {
class Checker;
struct TestBackdoor;
}  // namespace check

class Comm {
 public:
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// Rank within THIS communicator (== global rank on the world comm).
  int rank() const { return group_rank_; }
  int size() const;
  /// Rank within the whole run (stable across split()).
  int global_rank() const { return global_rank_; }
  /// Global rank of this communicator's `group_rank` member.
  int global_rank_of(int group_rank) const;

  VirtualClock& clock();
  const VirtualClock& clock() const;
  const NetworkModel& network() const;
  const ComputeModel& compute_model() const;
  /// The run's fault schedule (empty by default); see faults.hpp. The
  /// schedule is known to every rank, which is what makes failure
  /// detection deterministic (no heartbeat protocol to model).
  const FaultModel& faults() const;

  /// MPI_Comm_split: collective over THIS communicator. Ranks passing equal
  /// `color` form a sub-communicator, ordered by their rank here. The
  /// returned Comm shares this rank's clock/accounting; it must not outlive
  /// the run.
  std::unique_ptr<Comm> split(int color);

  // ---- collectives (every rank of THIS communicator must participate) ----

  /// Fence-style synchronization: all clocks advance to the max entry time
  /// plus the modeled barrier cost. The wait shows up in sync_wait — this is
  /// where load imbalance becomes visible, as on the real machine.
  void barrier();

  double allreduce_max(double value);
  double allreduce_min(double value);
  std::uint64_t allreduce_sum(std::uint64_t value);
  /// Element-wise sum across ranks, in place (Algorithm B's global count
  /// array); all ranks must pass equal-length vectors.
  void allreduce_sum(std::vector<std::uint64_t>& values);

  /// Gather one POD value from every rank, returned in rank order.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const void* const* slots = post_and_collect(&value);
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r)
      out[static_cast<std::size_t>(r)] = *static_cast<const T*>(slots[r]);
    finish_collective(collective_cost(sizeof(T)));
    return out;
  }

  /// Personalized all-to-all over byte payloads: send[j] goes to rank j;
  /// returns what every rank sent to this one, in rank order. This is the
  /// MPI_Alltoallv of Algorithm B's counting-sort redistribution.
  std::vector<std::vector<char>> alltoallv(
      const std::vector<std::vector<char>>& send);

  /// One-to-all broadcast of a byte payload from `root` (group rank).
  std::vector<char> bcast(int root, const std::vector<char>& payload);

  // ---- point-to-point (master–worker baseline) ----

  struct Message {
    int source = -1;  ///< GROUP rank of the sender (-1 if outside the group)
    int tag = -1;
    std::vector<char> payload;
  };

  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;

  /// Eager non-blocking send (buffered; the sender only pays latency).
  /// `destination` is a rank of this communicator.
  void send(int destination, int tag, std::vector<char> payload);
  /// Blocking receive; matches source/tag (kAnySource / kAnyTag wildcards).
  Message recv(int source = kAnySource, int tag = kAnyTag);

  // ---- memory accounting (the paper's 1 GB/process constraint) ----

  /// Record an allocation attributed to this rank's algorithmic state.
  /// Throws OutOfMemoryBudget if a budget is set and would be exceeded.
  void charge_alloc(std::size_t bytes);
  void release_alloc(std::size_t bytes);
  /// 0 disables the budget (default).
  void set_memory_budget(std::size_t bytes);
  std::size_t current_memory() const;
  std::size_t peak_memory() const;

  // ---- user counters (candidates evaluated, hits kept, ...) ----
  void bump(const std::string& name, std::uint64_t delta = 1);

  // ---- span tracing (Runtime::enable_tracing; see span.hpp) ----

  /// True when this run records span timelines.
  bool tracing() const;
  /// Drop an instant marker on this rank's clock lane at the current
  /// virtual time (ring iteration, batch, phase boundary). No-op when
  /// tracing is disabled; never advances the clock.
  void trace_mark(const std::string& label);
  /// Drop an instant control event on this rank's serve lane (lane 3) at
  /// the current virtual time. `kind` must be one of the kServe* marker
  /// kinds (admit/shed/dispatch/publish). No-op when tracing is disabled;
  /// never advances the clock.
  void trace_serve(SpanKind kind, const std::string& label);
  /// Drop an instant scheduler-decision event on this rank's sched lane
  /// (lane 4) at the current virtual time. `kind` must be one of the
  /// kSched* marker kinds (submit/start/backfill/preempt/complete/slice).
  /// No-op when tracing is disabled; never advances the clock.
  void trace_sched(SpanKind kind, const std::string& label);

  // ---- fault bookkeeping (called by the algorithms' recovery paths) ----

  /// Record that this rank fail-stopped (its scheduled crash fired). The
  /// rank's thread keeps running as a "zombie" to match collectives.
  void mark_crashed(const std::string& detail);
  /// Charge `seconds` of recovery overhead (e.g. crash-detection timeout)
  /// to the virtual clock and record a recovery event.
  void charge_recovery(double seconds, const std::string& detail);
  /// Attribute `seconds` of already-charged work (re-search compute/IO) to
  /// recovery, without advancing the clock again.
  void note_recovery_span(double seconds, const std::string& detail);

  RankStats stats() const;

 private:
  friend class Runtime;
  friend class Window;
  friend struct check::TestBackdoor;

  Comm(detail::Shared& shared, std::shared_ptr<detail::CollectiveGroup> group,
       int group_rank);

  /// The run's happens-before checker; null unless checking is enabled.
  check::Checker* checker() const;

  /// Two-phase collective slot exchange. Phase 1: every rank posts `mine`
  /// and its entry time, then synchronizes; the returned array of all
  /// posted pointers (group order) is valid until finish_collective().
  /// `checked = false` (test backdoor only) hides the rendezvous from the
  /// happens-before checker.
  const void* const* post_and_collect(const void* mine, bool checked = true);
  /// Phase 2: advance the clock to max(entry)+cost and release the slots.
  void finish_collective(double cost, bool checked = true);
  double max_posted_entry() const;
  double collective_cost(std::size_t bytes) const;

  /// Consume this rank's scheduled transient transfer failures: for every
  /// failing attempt ordinal, pay retry_delay on the clock and record a
  /// retry event; then consume the ordinal of the succeeding attempt.
  /// No-op (and no ordinal is consumed) for ranks with no failure set.
  void pay_transfer_faults(const char* what);
  /// Straggler network slowdown of a (src, dst) transfer: max over the two
  /// endpoints' multipliers; exactly 1.0 when no straggler is scheduled.
  double fault_network_scale(int global_src, int global_dst) const;

  detail::Shared& shared_;
  std::shared_ptr<detail::CollectiveGroup> group_;
  int group_rank_;
  int global_rank_;
  detail::RankState& state_;
};

// ---- one-sided communication ----

/// Handle for a pending non-blocking get.
struct RmaRequest {
  double arrival_time = 0.0;  ///< virtual time the data is fully local
  double issue_cost = 0.0;    ///< modeled transfer duration (arrival − issue)
  bool active = false;

  // Destination-buffer snapshot for the lifetime check (Window-internal;
  // see the "Destination-buffer lifetime rule" below).
  const std::vector<char>* dest = nullptr;
  const char* dest_data = nullptr;
  std::size_t dest_size = 0;
};

/// An RMA window over each rank's local shard (constant bytes, e.g. the
/// packed database partition), scoped to the communicator it was created
/// on. Construction is collective over that communicator. The exposed
/// bytes must stay alive and unmodified while any rank can still read
/// them: callers must synchronize (fence() or Comm::barrier()) before
/// letting the storage die — mirroring MPI_Win_free's collective semantics.
///
/// Destination-buffer lifetime rule: between rget()/rget_range() and the
/// matching wait(), the destination vector is owned by the transfer — do
/// not resize, reassign, std::swap or destroy it, and do not issue a second
/// rget into it. Every request must be wait()ed before the next fence().
/// These rules are enforced: rget into a pending buffer, wait() on a
/// request whose buffer changed identity, and fence() with pending
/// requests all fail an MSP_CHECK — or, when the run's happens-before
/// checker is on (Runtime::enable_checking, MSPAR_CHECK), are reported as
/// dest-buffer-lifetime / fence-with-pending violations with both
/// conflicting access spans (see check.hpp). (The classic footgun was
/// issuing a prefetch into D_recv and swapping D_recv/D_comp before the
/// wait — silently scoring a half-defined shard.)
class Window {
 public:
  Window(Comm& comm, std::span<const char> local_shard);
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;
  /// Non-collective, but revokes this rank's exposure: drains any reader
  /// copy still in flight out of our bytes, so that when an error unwinds
  /// a rank's stack its exposed storage cannot be freed under a concurrent
  /// rget. Healthy drivers fence before letting a window die, so only
  /// aborting runs ever contend here.
  ~Window();

  std::size_t shard_size(int target) const;

  /// Non-blocking one-sided read of `target`'s whole shard into `dest`
  /// (resized). Data is available after wait(); the transfer is modeled to
  /// proceed in the background — this is the paper's MPI_Get + masking.
  /// `concurrent_pulls` is how many ranks of this node are expected to pull
  /// simultaneously (ring step: every rank, so network().concurrent_pulls);
  /// pass 1 for an isolated transfer.
  RmaRequest rget(int target, std::vector<char>& dest, int concurrent_pulls);

  /// Partial one-sided read: bytes [offset, offset+length) of `target`'s
  /// shard — MPI_Get with a displacement, the primitive the on-demand
  /// candidate-store transport needs. Bounds-checked against the target's
  /// shard size.
  RmaRequest rget_range(int target, std::size_t offset, std::size_t length,
                        std::vector<char>& dest, int concurrent_pulls);

  /// Complete a pending get: any transfer time not already covered by
  /// computation shows up as residual communication. Checks that the
  /// destination buffer is still the one the request was issued into.
  void wait(RmaRequest& request);

  /// Collective fence (MPI_Win_fence): synchronizes the communicator.
  /// Requires every request issued on this window to have been wait()ed.
  void fence();

  /// Record a mutation of the locally exposed shard bytes with the
  /// happens-before checker (no-op when checking is off). The transport
  /// itself never mutates exposed shards; a driver that does must call this
  /// so the checker can order the write against peer reads — an unordered
  /// pair is a concurrent-shard-write / unordered-shard-read violation.
  void note_local_write(const std::string& what);

 private:
  friend struct check::TestBackdoor;

  /// One per exposing rank, shared by every rank's Window of the same
  /// collective construction. Readers hold `mutex` shared while copying
  /// out of the owner's bytes; the owner's destructor takes it exclusive
  /// and sets `revoked`, after which readers throw Aborted instead of
  /// touching freed storage.
  struct Exposure {
    std::shared_mutex mutex;
    bool revoked = false;
  };

  /// Rank-local bookkeeping for one in-flight get: the destination buffer
  /// plus the issue interval and trace event id the checker's violation
  /// reports point back to.
  struct PendingGet {
    const std::vector<char>* dest = nullptr;
    double begin = 0.0;          ///< virtual issue time
    double end = 0.0;           ///< modeled arrival time
    long long trace_event = -1;  ///< kRgetIssue span index (tracing only)
    std::string what;            ///< issue description (checking only)
  };

  Comm& comm_;
  std::vector<std::span<const char>> shards_;  ///< group-rank order
  std::vector<std::shared_ptr<Exposure>> exposures_;  ///< group-rank order
  /// Rank-local: destination buffers with a pending request on them.
  std::vector<PendingGet> pending_;
};

}  // namespace msp::sim
