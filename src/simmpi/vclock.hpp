// Per-rank virtual clock.
//
// Every rank owns one clock; algorithm code charges modeled costs to it
// (compute, I/O) and the communication layer advances it for transfers and
// synchronization. The clock also keeps per-bucket totals so the trace can
// decompose a run the way Section III of the paper does: computation vs.
// "residual communication" (time spent waiting for data or for other ranks,
// i.e. total communication minus the part masked by computation).
//
// When a span log is attached (Runtime tracing enabled), every charge and
// wait additionally records a Span on the rank's timeline; detached (the
// default), each charge pays exactly one null-pointer check.
#pragma once

#include "simmpi/span.hpp"

namespace msp::sim {

class VirtualClock {
 public:
  double now() const { return now_; }

  void charge_compute(double seconds) {
    if (compute_scale_ != 1.0) seconds *= compute_scale_;
    const double begin = now_;
    now_ += seconds;
    compute_ += seconds;
    if (spans_) spans_->push_back({SpanKind::kCompute, begin, now_, {}});
  }

  void charge_io(double seconds) {
    const double begin = now_;
    now_ += seconds;
    io_ += seconds;
    if (spans_) spans_->push_back({SpanKind::kIo, begin, now_, {}});
  }

  /// Fault-recovery cost (retry backoff, crash-detection timeout): advances
  /// the clock and is accounted in its own bucket so RankStats can report
  /// recovery time separately from useful work.
  void charge_recovery(double seconds) {
    const double begin = now_;
    now_ += seconds;
    recovery_ += seconds;
    if (spans_) spans_->push_back({SpanKind::kRecoveryWait, begin, now_, {}});
  }

  /// Straggler injection: every subsequent charge_compute is multiplied by
  /// `scale` (1.0 = nominal speed; the default is bit-exact zero-cost).
  void set_compute_scale(double scale) { compute_scale_ = scale; }

  /// Record that a communication of modeled duration `seconds` was issued
  /// (for the total-communication bookkeeping; does not advance the clock —
  /// non-blocking issue).
  void note_comm_issued(double seconds) { comm_issued_ += seconds; }

  /// One-sided transfer accounting for the masking metric: `issued` modeled
  /// seconds left the NIC, of which `overlapped` were hidden under work the
  /// rank did between issue and wait (never more than `issued`).
  void note_rget_issued(double seconds) { rget_issued_ += seconds; }
  void note_rget_overlapped(double seconds) { rget_overlapped_ += seconds; }

  /// Block until virtual time `ready`: the residual (unmasked) part of a
  /// wait. No-op if `ready` has already passed — fully masked.
  void wait_until(double ready) {
    if (ready > now_) {
      residual_ += ready - now_;
      if (spans_) spans_->push_back({SpanKind::kRgetWait, now_, ready, {}});
      now_ = ready;
    }
  }

  /// Service idle: advance to `ready` without charging any work bucket —
  /// the rank is waiting for queries to *arrive*, not for data or peers, so
  /// idle time must not pollute the residual/sync decomposition.
  void idle_until(double ready) {
    if (ready > now_) {
      idle_ += ready - now_;
      if (spans_) spans_->push_back({SpanKind::kServeIdle, now_, ready, {}});
      now_ = ready;
    }
  }

  /// Synchronization wait (barrier/fence): like wait_until but accounted in
  /// its own bucket so imbalance is distinguishable from transfer delay.
  void sync_until(double ready) {
    if (ready > now_) {
      sync_wait_ += ready - now_;
      if (spans_) spans_->push_back({SpanKind::kBarrier, now_, ready, {}});
      now_ = ready;
    }
  }

  double compute_seconds() const { return compute_; }
  double io_seconds() const { return io_; }
  double comm_issued_seconds() const { return comm_issued_; }
  double residual_comm_seconds() const { return residual_; }
  double sync_wait_seconds() const { return sync_wait_; }
  double idle_seconds() const { return idle_; }
  double recovery_seconds() const { return recovery_; }
  double rget_issued_seconds() const { return rget_issued_; }
  double rget_overlapped_seconds() const { return rget_overlapped_; }

  /// Attach (or detach with nullptr) the rank's span log. Owned by the
  /// caller; the clock only appends.
  void attach_span_log(SpanLog* spans) { spans_ = spans; }
  bool tracing() const { return spans_ != nullptr; }
  SpanLog* span_log() { return spans_; }

 private:
  double now_ = 0.0;
  double compute_ = 0.0;
  double io_ = 0.0;
  double comm_issued_ = 0.0;
  double residual_ = 0.0;
  double sync_wait_ = 0.0;
  double idle_ = 0.0;
  double recovery_ = 0.0;
  double rget_issued_ = 0.0;
  double rget_overlapped_ = 0.0;
  double compute_scale_ = 1.0;
  SpanLog* spans_ = nullptr;
};

}  // namespace msp::sim
