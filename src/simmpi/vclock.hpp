// Per-rank virtual clock.
//
// Every rank owns one clock; algorithm code charges modeled costs to it
// (compute, I/O) and the communication layer advances it for transfers and
// synchronization. The clock also keeps per-bucket totals so the trace can
// decompose a run the way Section III of the paper does: computation vs.
// "residual communication" (time spent waiting for data or for other ranks,
// i.e. total communication minus the part masked by computation).
#pragma once

namespace msp::sim {

class VirtualClock {
 public:
  double now() const { return now_; }

  void charge_compute(double seconds) {
    if (compute_scale_ != 1.0) seconds *= compute_scale_;
    now_ += seconds;
    compute_ += seconds;
  }

  void charge_io(double seconds) {
    now_ += seconds;
    io_ += seconds;
  }

  /// Fault-recovery cost (retry backoff, crash-detection timeout): advances
  /// the clock and is accounted in its own bucket so RankStats can report
  /// recovery time separately from useful work.
  void charge_recovery(double seconds) {
    now_ += seconds;
    recovery_ += seconds;
  }

  /// Straggler injection: every subsequent charge_compute is multiplied by
  /// `scale` (1.0 = nominal speed; the default is bit-exact zero-cost).
  void set_compute_scale(double scale) { compute_scale_ = scale; }

  /// Record that a communication of modeled duration `seconds` was issued
  /// (for the total-communication bookkeeping; does not advance the clock —
  /// non-blocking issue).
  void note_comm_issued(double seconds) { comm_issued_ += seconds; }

  /// Block until virtual time `ready`: the residual (unmasked) part of a
  /// wait. No-op if `ready` has already passed — fully masked.
  void wait_until(double ready) {
    if (ready > now_) {
      residual_ += ready - now_;
      now_ = ready;
    }
  }

  /// Synchronization wait (barrier/fence): like wait_until but accounted in
  /// its own bucket so imbalance is distinguishable from transfer delay.
  void sync_until(double ready) {
    if (ready > now_) {
      sync_wait_ += ready - now_;
      now_ = ready;
    }
  }

  double compute_seconds() const { return compute_; }
  double io_seconds() const { return io_; }
  double comm_issued_seconds() const { return comm_issued_; }
  double residual_comm_seconds() const { return residual_; }
  double sync_wait_seconds() const { return sync_wait_; }
  double recovery_seconds() const { return recovery_; }

 private:
  double now_ = 0.0;
  double compute_ = 0.0;
  double io_ = 0.0;
  double comm_issued_ = 0.0;
  double residual_ = 0.0;
  double sync_wait_ = 0.0;
  double recovery_ = 0.0;
  double compute_scale_ = 1.0;
};

}  // namespace msp::sim
