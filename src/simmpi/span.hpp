// Event-level spans on the virtual clock.
//
// A Span is one interval (or instant) of a rank's timeline, recorded only
// when the Runtime's tracing is enabled: the clock's charge/wait methods
// emit the where-did-time-go lanes, the communication layer emits transfer
// and fault lanes, and the algorithms drop iteration markers. When tracing
// is disabled nothing is recorded — the only cost anywhere is a null-pointer
// check per clock charge (the zero-cost-when-disabled contract, DESIGN.md
// §5e).
//
// Lanes (the Chrome trace-event `tid` of RunReport::to_chrome_trace()):
//   0 "clock"     — non-overlapping intervals that advanced the virtual
//                   clock (compute, io, rget-wait, barrier, recovery-wait)
//                   plus instant iteration markers. Monotone and gap-free up
//                   to idle time by construction.
//   1 "transfers" — modeled in-flight transfers: begin = issue time, end =
//                   modeled arrival. Overlaps the clock lane; that overlap
//                   IS the masking the paper measures.
//   2 "faults"    — injected-fault activity (retry, crash, recovery spans)
//                   with human-readable detail; overlays the clock lane.
//   3 "serve"     — online-service control events (arrival admission, load
//                   shedding, batch dispatch/publication): instant markers
//                   dropped by the serving layer at step boundaries, plus
//                   queue-depth detail. Only populated by serving runs.
//   4 "sched"     — cluster-scheduler decisions (job submit/start/complete,
//                   backfill admissions, preemptions): instant markers
//                   dropped by the sched controller at fence boundaries.
//                   Only populated by scheduled (multi-job) runs.
#pragma once

#include <string>
#include <vector>

namespace msp::sim {

enum class SpanKind {
  // ---- clock lane ----
  kCompute,       ///< VirtualClock::charge_compute
  kIo,            ///< VirtualClock::charge_io
  kRgetWait,      ///< residual (unmasked) data wait: VirtualClock::wait_until
  kBarrier,       ///< barrier/fence imbalance wait: VirtualClock::sync_until
  kRecoveryWait,  ///< clock blocked on retry backoff / crash detection
  kMarker,        ///< instant algorithm marker (ring iteration, phase start)
  kServeIdle,     ///< service ring idle: clock advanced to the next arrival
  // ---- transfer lane ----
  kRgetIssue,     ///< modeled one-sided transfer in flight (rget/rget_range)
  // ---- fault lane ----
  kFaultRetry,
  kFaultCrash,
  kFaultRecovery,
  // ---- serve lane (instant control markers; see serve/service.hpp) ----
  kServeAdmit,     ///< queries admitted to the service queue
  kServeShed,      ///< arrivals shed by admission control
  kServeDispatch,  ///< batch dispatched into the service ring
  kServePublish,   ///< batch's last shard scored; results published
  kServeRouteSkip, ///< ring step skipped by the shard mass map router
  // ---- sched lane (instant scheduler decisions; see sched/scheduler.hpp) --
  kSchedSubmit,    ///< job entered the scheduler queue (virtual arrival)
  kSchedStart,     ///< job's first chunk admitted to the ring
  kSchedBackfill,  ///< batch chunk backfilled into a measured serve gap
  kSchedPreempt,   ///< batch flight preempted; queries re-queued
  kSchedComplete,  ///< job's last query published
  kSchedSlice,     ///< pack/index-build compute slice executed
};

const char* span_kind_name(SpanKind kind);

/// Trace lane a kind renders on (0 clock, 1 transfers, 2 faults, 3 serve,
/// 4 sched).
int span_lane(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kCompute;
  double begin = 0.0;  ///< virtual time the interval started
  double end = 0.0;    ///< virtual time it ended (== begin for instants)
  std::string name;    ///< optional detail (markers, transfers, faults)
};

using SpanLog = std::vector<Span>;

}  // namespace msp::sim
