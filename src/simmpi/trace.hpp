// Run reports: what a simulated parallel execution measured.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simmpi/span.hpp"

namespace msp::sim {

/// One injected-fault occurrence on a rank's timeline (see faults.hpp).
enum class FaultKind { kRetry, kCrash, kRecovery };

struct FaultEvent {
  FaultKind kind = FaultKind::kRetry;
  double time = 0.0;     ///< virtual time the event was recorded
  double seconds = 0.0;  ///< delay or recovery span attributed to it
  std::string detail;
};

const char* fault_kind_name(FaultKind kind);

struct RankStats {
  int rank = 0;
  double total_time = 0.0;          ///< final virtual time of the rank
  double compute_seconds = 0.0;
  double io_seconds = 0.0;
  double comm_issued_seconds = 0.0; ///< modeled duration of all transfers
  double residual_comm_seconds = 0.0;  ///< transfer wait not masked by compute
  double sync_wait_seconds = 0.0;      ///< barrier/fence (imbalance) waits
  double idle_seconds = 0.0;  ///< service idle (waiting for query arrivals)
  double rget_issued_seconds = 0.0;  ///< modeled one-sided transfer issued
  double rget_overlapped_seconds = 0.0;  ///< part of it hidden under local work
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t peak_memory_bytes = 0;
  std::map<std::string, std::uint64_t> counters;  ///< user counters

  // ---- fault accounting (all zero/empty on a failure-free run) ----
  double recovery_seconds = 0.0;  ///< retry + detection + re-search time
  std::uint64_t transfer_retries = 0;
  bool crashed = false;
  std::vector<FaultEvent> fault_events;  ///< timeline, in virtual-time order

  /// Event-level timeline (empty unless the Runtime's tracing was enabled;
  /// see span.hpp for the lane model).
  SpanLog spans;

  /// Fraction of this rank's issued one-sided transfer time that was
  /// overlapped by local work between issue and wait — the paper's masking,
  /// measured rather than inferred. 0 when the rank issued no transfers.
  double masking_efficiency() const;
};

/// Column policy for RunReport::to_csv. Downstream parsers comparing a
/// faulty run against a clean one need both files to carry the same
/// columns: pass kInclude for every file of such a comparison. kAuto keeps
/// the zero-cost-when-disabled contract (a failure-free run renders without
/// the fault columns, byte-identical to a build without the fault layer).
enum class CsvFaultColumns { kAuto, kInclude, kOmit };

struct RunReport {
  int p = 0;
  std::vector<RankStats> ranks;

  /// Parallel run-time: the last rank to finish defines it.
  double total_time() const;
  double max_compute() const;
  double sum_compute() const;
  /// Aggregate (residual communication + sync wait) over compute, computed
  /// as sum-over-ranks / sum-over-ranks. Semantics: every rank counts —
  /// a rank with zero compute (e.g. one that crashed before its first
  /// charge) contributes its waits to the numerator and nothing to the
  /// denominator, instead of being silently dropped and re-weighting the
  /// others (the old per-rank mean skipped such ranks, biasing skewed
  /// decompositions). Returns 0 when no rank computed at all.
  double mean_residual_over_compute() const;
  std::uint64_t sum_counter(const std::string& name) const;
  std::size_t max_peak_memory() const;
  /// Aggregate service idle: the sum over ranks of the kServeIdle lane's
  /// total (clock time spent parked waiting for the next arrival). First-
  /// class here — rendered as the `idle_s` CSV column and the `serve_idle_s`
  /// JSON field — so backfill efficiency is measurable from the report, not
  /// just the trace.
  double serve_idle_seconds() const;

  // ---- masking metric (see DESIGN.md §5e for the overlap algebra) ----

  /// Aggregate masking efficiency: sum of overlapped one-sided transfer
  /// seconds over sum issued, across all ranks. 1.0 = every issued byte was
  /// hidden under computation; 0 when nothing was issued.
  double masking_efficiency() const;
  /// Overlap-derived estimate of the paper's masking saving: what fraction
  /// of an *unmasked* re-run's run-time the measured overlap bought. The
  /// unmasked run-time is estimated per rank as (elapsed + overlapped) —
  /// un-hiding every masked second re-exposes it on that rank's critical
  /// path — and the estimate is (T_est − T) / T_est on the slowest rank.
  double masking_saving_estimate() const;

  // ---- fault-injection summaries (see faults.hpp) ----
  std::uint64_t total_transfer_retries() const;
  double total_recovery_seconds() const;
  std::vector<int> crashed_ranks() const;
  /// True when any rank retried, recovered, or crashed. When false, the
  /// string/CSV renderings are byte-identical to a build without the fault
  /// layer — the zero-cost-when-disabled contract.
  bool has_fault_activity() const;

  std::string to_string() const;

  /// Machine-readable per-rank dump (one row per rank) for external
  /// plotting: rank, total, compute, io, comm_issued, residual, sync, idle,
  /// rget_issued, rget_overlap, bytes_sent, bytes_received, peak_memory,
  /// then user counters as extra columns (names CSV-escaped; a comma or
  /// quote in a counter name cannot corrupt the row). Fault columns
  /// (retries, recovery_s, crashed) appear after peak_memory per
  /// `fault_columns` (kAuto: only when this run has fault activity).
  std::string to_csv(
      CsvFaultColumns fault_columns = CsvFaultColumns::kAuto) const;

  /// Machine-readable summary as deterministic JSON (util/json.hpp
  /// rendering): run aggregates, counter sums, per-rank time buckets, and —
  /// only when the run had fault activity — a "faults" object, mirroring
  /// to_csv's auto column policy. The sweep benches embed this instead of
  /// hand-rolling their own emitters, so field names and float formatting
  /// cannot drift between them.
  std::string to_json() const;

  // ---- span-trace exports (rows only when tracing was enabled) ----

  /// Chrome trace-event JSON (the `chrome://tracing` / Perfetto "JSON
  /// Object Format"): one pid per rank, lanes per span.hpp. Deterministic:
  /// byte-identical for a fixed (workload, model, p, fault schedule,
  /// kernel_threads) tuple.
  std::string to_chrome_trace() const;

  /// Per-iteration CSV: rank timelines segmented at kMarker spans (drivers
  /// mark each ring step / batch / phase start). Columns: rank, segment
  /// ordinal, marker label, segment begin/end, then per-bucket seconds
  /// spent inside the segment and the modeled transfer time issued from it.
  std::string to_iteration_csv() const;
};

/// RFC-4180 CSV field escaping: quoted iff the value contains a comma,
/// quote, or newline (quotes doubled). Exposed for the bench/report tools.
std::string csv_escape(const std::string& field);

}  // namespace msp::sim
