// Run reports: what a simulated parallel execution measured.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msp::sim {

struct RankStats {
  int rank = 0;
  double total_time = 0.0;          ///< final virtual time of the rank
  double compute_seconds = 0.0;
  double io_seconds = 0.0;
  double comm_issued_seconds = 0.0; ///< modeled duration of all transfers
  double residual_comm_seconds = 0.0;  ///< transfer wait not masked by compute
  double sync_wait_seconds = 0.0;      ///< barrier/fence (imbalance) waits
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t peak_memory_bytes = 0;
  std::map<std::string, std::uint64_t> counters;  ///< user counters
};

struct RunReport {
  int p = 0;
  std::vector<RankStats> ranks;

  /// Parallel run-time: the last rank to finish defines it.
  double total_time() const;
  double max_compute() const;
  double sum_compute() const;
  /// Residual communication (paper's definition: waiting for data) summed
  /// with sync waits, per the slowest decomposition view.
  double mean_residual_over_compute() const;
  std::uint64_t sum_counter(const std::string& name) const;
  std::size_t max_peak_memory() const;

  std::string to_string() const;

  /// Machine-readable per-rank dump (one row per rank) for external
  /// plotting: rank, total, compute, io, comm_issued, residual, sync,
  /// bytes_sent, bytes_received, peak_memory, then user counters as extra
  /// name=value columns.
  std::string to_csv() const;
};

}  // namespace msp::sim
