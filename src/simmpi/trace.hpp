// Run reports: what a simulated parallel execution measured.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msp::sim {

/// One injected-fault occurrence on a rank's timeline (see faults.hpp).
enum class FaultKind { kRetry, kCrash, kRecovery };

struct FaultEvent {
  FaultKind kind = FaultKind::kRetry;
  double time = 0.0;     ///< virtual time the event was recorded
  double seconds = 0.0;  ///< delay or recovery span attributed to it
  std::string detail;
};

const char* fault_kind_name(FaultKind kind);

struct RankStats {
  int rank = 0;
  double total_time = 0.0;          ///< final virtual time of the rank
  double compute_seconds = 0.0;
  double io_seconds = 0.0;
  double comm_issued_seconds = 0.0; ///< modeled duration of all transfers
  double residual_comm_seconds = 0.0;  ///< transfer wait not masked by compute
  double sync_wait_seconds = 0.0;      ///< barrier/fence (imbalance) waits
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t peak_memory_bytes = 0;
  std::map<std::string, std::uint64_t> counters;  ///< user counters

  // ---- fault accounting (all zero/empty on a failure-free run) ----
  double recovery_seconds = 0.0;  ///< retry + detection + re-search time
  std::uint64_t transfer_retries = 0;
  bool crashed = false;
  std::vector<FaultEvent> fault_events;  ///< timeline, in virtual-time order
};

struct RunReport {
  int p = 0;
  std::vector<RankStats> ranks;

  /// Parallel run-time: the last rank to finish defines it.
  double total_time() const;
  double max_compute() const;
  double sum_compute() const;
  /// Residual communication (paper's definition: waiting for data) summed
  /// with sync waits, per the slowest decomposition view.
  double mean_residual_over_compute() const;
  std::uint64_t sum_counter(const std::string& name) const;
  std::size_t max_peak_memory() const;

  // ---- fault-injection summaries (see faults.hpp) ----
  std::uint64_t total_transfer_retries() const;
  double total_recovery_seconds() const;
  std::vector<int> crashed_ranks() const;
  /// True when any rank retried, recovered, or crashed. When false, the
  /// string/CSV renderings are byte-identical to a build without the fault
  /// layer — the zero-cost-when-disabled contract.
  bool has_fault_activity() const;

  std::string to_string() const;

  /// Machine-readable per-rank dump (one row per rank) for external
  /// plotting: rank, total, compute, io, comm_issued, residual, sync,
  /// bytes_sent, bytes_received, peak_memory, then user counters as extra
  /// name=value columns. Runs with fault activity add retries, recovery_s
  /// and crashed columns after peak_memory.
  std::string to_csv() const;
};

}  // namespace msp::sim
