// Deterministic fault injection for the simulated cluster.
//
// A FaultModel is a *schedule*, fixed before the run starts: which ranks run
// slow (stragglers), which of a rank's transfer attempts fail (transient
// network faults, retried with timeout + exponential backoff), and which
// ranks crash at which algorithm step. The schedule is plain data — no
// randomness, no wall-clock timing — so every failure scenario is a
// reproducible test case: the same (workload, model, p, schedule) tuple
// always yields the same virtual times, traces, and counters (see
// netmodel.hpp for the base determinism contract this extends).
//
// Event semantics:
//
//  * Stragglers — compute_multiplier scales every compute charge on the
//    rank's virtual clock; network_multiplier scales the cost of every
//    transfer the rank is an endpoint of (the effective multiplier of a
//    transfer is the max over its two endpoints, like a degraded NIC).
//
//  * Transient transfer failures — each rank numbers its own transfer
//    attempts (rget / rget_range / send issues) from 0. When the current
//    ordinal is in the rank's failure set, the attempt fails: the rank pays
//    retry_timeout_s plus a deterministic exponential backoff on its clock
//    (accounted as recovery time) and retries, consuming the next ordinal —
//    so consecutive ordinals model repeated failures of one logical
//    transfer. Note that attempt ordinals follow a rank's program order;
//    they are reproducible wherever the communication pattern is (all of
//    Algorithm A/B; master-worker workers — but not the master, whose send
//    order follows physical arrival order of worker requests).
//
//  * Crashes — crash(rank, step) fail-stops the rank at algorithm step
//    `step` (ring iteration for Algorithm A, received-batch ordinal for
//    master-worker; the algorithms define the interpretation). Crashes are
//    step-boundary events: a transfer issued before the owner's crash step
//    still completes. A dead rank becomes a "zombie": it stops contributing
//    work but keeps matching the survivors' collective calls so barrier
//    epochs and window lifetimes stay aligned — modeling an MPI
//    fault-tolerance layer that keeps the communicator usable during
//    recovery. Failure detection is omniscient and deterministic: instead
//    of heartbeats, survivors charge crash_detection_timeout_s once.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>

#include "util/backoff.hpp"

namespace msp::sim {

struct StragglerSpec {
  double compute_multiplier = 1.0;
  double network_multiplier = 1.0;
};

struct FaultModel {
  // ---- the schedule (keys are GLOBAL ranks) ----
  std::map<int, StragglerSpec> stragglers;
  std::map<int, std::set<std::uint64_t>> transfer_failures;
  std::map<int, int> crashes;  ///< rank -> algorithm step it dies at

  // ---- tunables ----
  double retry_timeout_s = 5e-3;          ///< time to notice a failed transfer
  double backoff_base_s = 1e-3;           ///< first retry delay
  double backoff_cap_s = 16e-3;           ///< backoff ceiling
  double crash_detection_timeout_s = 20e-3;  ///< time to declare a rank dead

  // ---- fluent builders ----
  FaultModel& straggle(int rank, double compute_multiplier,
                       double network_multiplier = 1.0) {
    stragglers[rank] = StragglerSpec{compute_multiplier, network_multiplier};
    return *this;
  }
  FaultModel& fail_transfers(int rank,
                             std::initializer_list<std::uint64_t> attempts) {
    transfer_failures[rank].insert(attempts.begin(), attempts.end());
    return *this;
  }
  FaultModel& crash(int rank, int step) {
    crashes[rank] = step;
    return *this;
  }

  // ---- queries ----
  bool empty() const {
    return stragglers.empty() && transfer_failures.empty() && crashes.empty();
  }
  bool has_crashes() const { return !crashes.empty(); }

  double compute_multiplier(int rank) const {
    const auto it = stragglers.find(rank);
    return it == stragglers.end() ? 1.0 : it->second.compute_multiplier;
  }
  double network_multiplier(int rank) const {
    const auto it = stragglers.find(rank);
    return it == stragglers.end() ? 1.0 : it->second.network_multiplier;
  }

  bool has_transfer_failures(int rank) const {
    return transfer_failures.find(rank) != transfer_failures.end();
  }
  bool transfer_fails(int rank, std::uint64_t attempt) const {
    const auto it = transfer_failures.find(rank);
    return it != transfer_failures.end() && it->second.count(attempt) != 0;
  }

  /// Step at which `rank` crashes, or -1 if it never does.
  int crash_step(int rank) const {
    const auto it = crashes.find(rank);
    return it == crashes.end() ? -1 : it->second;
  }

  /// Virtual-clock cost of retry number `retry` (0-based) of a failed
  /// transfer: the detection timeout plus deterministic backoff.
  double retry_delay(int retry) const {
    return retry_timeout_s +
           exponential_backoff(retry, backoff_base_s, backoff_cap_s);
  }
};

}  // namespace msp::sim
