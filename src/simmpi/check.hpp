// simcheck: a vector-clock happens-before checker for the simulated RMA
// transport.
//
// The transport's memory-consistency contract (the Window doc block in
// comm.hpp) was previously stated as comments and enforced by scattered
// point asserts. simcheck turns it into a checked model: every rank carries
// a vector clock advanced by its events and joined at every synchronizing
// operation (collectives, window creation, fences, message delivery), and
// every one-sided shard access records an access interval against it. A
// violation is any access pair the protocol leaves unordered:
//
//   (a) unordered-shard-read   — an rget/rget_range of a shard epoch that is
//       not ordered (happens-before) after the shard's last local write,
//   (b) dest-buffer-lifetime   — reuse of a destination buffer that still
//       has a pending request, or a buffer identity change (resize /
//       reassign / swap) between issue and wait,
//   (c) fence-with-pending     — fence() while requests on the window are
//       still un-waited,
//   (d) concurrent-shard-write — a local write to the exposed shard that is
//       concurrent with (not ordered after) a peer's recorded read.
//
// Every violation reports the two conflicting access spans: rank, virtual
// time interval, a human-readable description, and — when span tracing is
// enabled — the trace event id (the span's index on the rank's timeline,
// rendered as `args.i` by RunReport::to_chrome_trace) so a report links
// directly into the Chrome trace.
//
// Cost model: checking is off by default in Release (`MSPAR_CHECK` CMake
// option, on by default in Debug). When off, no shadow state is allocated
// and every hook is a single null-pointer test. When on, hooks serialize on
// one mutex — acceptable for a correctness mode — but never touch the
// virtual clocks, counters, or span logs, so a clean run's hits, stats and
// traces are bit-identical with checking on or off.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace msp::sim {

class Comm;
class Window;

namespace check {

/// The four violation classes of the transport contract (see file header).
enum class ViolationKind {
  kUnorderedShardRead,
  kDestBufferLifetime,
  kFenceWithPending,
  kConcurrentShardWrite,
};

const char* violation_kind_name(ViolationKind kind);

/// One side of a conflict: an access interval on a rank's timeline.
struct AccessSpan {
  int rank = -1;             ///< global rank of the accessing rank
  double begin = 0.0;        ///< virtual time the access started
  double end = 0.0;          ///< virtual time it ended (== begin for instants)
  long long trace_event = -1;  ///< span index on the rank's timeline when
                               ///< tracing is enabled (`args.i` in the Chrome
                               ///< trace), -1 otherwise
  std::string what;          ///< human-readable event description
};

struct Violation {
  ViolationKind kind = ViolationKind::kUnorderedShardRead;
  AccessSpan first;   ///< the established access (write, issue, expose)
  AccessSpan second;  ///< the conflicting access that closed the pair
  std::string detail;

  /// Deterministic multi-line rendering (fixed-precision virtual times).
  std::string to_string() const;
};

/// Thrown at the point of detection when no violation sink is installed.
/// Derives from InvalidArgument so callers catching the contract-violation
/// family of the point asserts keep working unchanged.
class CheckFailed : public InvalidArgument {
 public:
  explicit CheckFailed(const Violation& violation)
      : InvalidArgument(violation.to_string()) {}
};

using VectorClock = std::vector<std::uint64_t>;

/// Per-run shadow state. One instance lives in the run's shared state when
/// checking is enabled (Runtime::enable_checking / MSPAR_CHECK); the
/// communication layer calls the hooks below. All hooks are thread-safe.
class Checker {
 public:
  /// `sink`: when non-null, violations are appended there and execution
  /// continues (the rejection-matrix tests use this); when null, the first
  /// violation throws CheckFailed in the offending rank.
  Checker(int p, std::vector<Violation>* sink);
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // ---- happens-before edges ----

  /// Publish `rank`'s clock for the collective it is entering. Called
  /// before the collective's first rendezvous.
  void post_clock(int rank);
  /// Join every member's posted clock into `rank`'s and advance it: the
  /// happens-before edge of a completed collective. Called after the first
  /// rendezvous (all members have posted) and before the second.
  void join_group(const std::vector<int>& members, int rank);
  /// Point-to-point edges: on_send snapshots the sender's advanced clock
  /// (carried by the message), on_recv joins it into the receiver's.
  VectorClock on_send(int rank);
  void on_recv(int rank, const VectorClock& sender_clock);

  // ---- shard access intervals ----

  /// Register an exposed shard. `key` identifies the (window, owner) pair —
  /// the owner's Exposure guard, pinned so the key stays unique for the
  /// run. The expose event is the epoch's initial "write".
  void on_expose(std::shared_ptr<const void> key, int owner,
                 const AccessSpan& expose);
  /// A one-sided read of the shard registered under `key`. Flags (a) when
  /// the epoch's last write does not happen-before the read.
  void on_shard_read(const void* key, int reader, const AccessSpan& read);
  /// A local write to the shard registered under `key`. Flags (d) for every
  /// recorded peer read that does not happen-before the write.
  void on_shard_write(const void* key, int owner, const AccessSpan& write);

  /// Record (sink mode) or throw (default) a violation. Also used directly
  /// by Window for the rank-local rules (b) and (c).
  void report(Violation violation);

 private:
  struct ReadRecord {
    bool valid = false;
    VectorClock clock;
    AccessSpan span;
  };
  struct ShardShadow {
    std::shared_ptr<const void> pin;  ///< keeps the key unique for the run
    int owner = -1;
    VectorClock write_clock;          ///< join of expose + all writes
    AccessSpan last_write;
    std::vector<ReadRecord> last_read;  ///< latest read per global rank
  };

  static bool covered_by(const VectorClock& a, const VectorClock& b);

  const int p_;
  std::vector<Violation>* sink_;
  std::mutex mutex_;
  std::vector<VectorClock> clocks_;  ///< per global rank
  std::vector<VectorClock> posted_;  ///< collective-entry snapshots
  /// Shadow state per shard buffer, keyed by address. Determinism audit:
  /// the map is only ever probed by key (operator[]/find) — never iterated —
  /// so neither hash-table order nor the ASLR-dependent pointer keys can
  /// leak into violation reports; ordering of reported violations comes
  /// from the (deterministic) event sequence that detects them.
  std::unordered_map<const void*, ShardShadow> shards_;
};

/// Test-only backdoor for the rejection-matrix tests: a physical rendezvous
/// that advances the virtual clocks exactly like Comm::barrier() but is
/// invisible to the checker — it models a driver synchronizing through a
/// side channel the transport cannot see, which is how each happens-before
/// violation is provoked deterministically.
struct TestBackdoor {
  static void unsynced_barrier(Comm& comm);
};

}  // namespace check
}  // namespace msp::sim
