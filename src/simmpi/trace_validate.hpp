// Schema validator for RunReport::to_chrome_trace() output.
//
// Shared by the tests, cluster_sim, and the CI trace smoke step so "the
// emitted trace is well-formed" means the same thing everywhere. Checks:
//   - the text is valid JSON (a small self-contained parser; no deps),
//   - the top level is an object with a "traceEvents" array,
//   - every event is an object with a string "ph" and integer "pid",
//   - duration events ("X") carry numeric "ts" and "dur" >= 0,
//   - per (pid, tid) lane, event "ts" values are monotonically
//     non-decreasing in record order,
//   - on the clock lane (tid 0), "X" spans are well-formed as a sequence:
//     each starts at or after the previous one ended (no overlap — the
//     clock lane is a flat sequence of charges, so any nesting is a bug).
#pragma once

#include <string>

namespace msp::sim {

/// Returns an empty string when `json` is a valid trace, else a one-line
/// description of the first problem found.
std::string validate_chrome_trace(const std::string& json);

}  // namespace msp::sim
