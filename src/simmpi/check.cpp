#include "simmpi/check.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "simmpi/comm.hpp"
#include "simmpi/shared.hpp"

namespace msp::sim::check {
namespace {

/// Fixed-precision virtual-time rendering keeps violation reports
/// byte-deterministic (same contract as the trace exporters).
std::string fixed9(double value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(9) << value;
  return os.str();
}

std::string render_span(const AccessSpan& span) {
  std::ostringstream os;
  os << "rank " << span.rank << " @ [" << fixed9(span.begin) << ", "
     << fixed9(span.end) << "]s";
  if (span.trace_event >= 0) os << " trace#" << span.trace_event;
  os << " — " << span.what;
  return os.str();
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnorderedShardRead: return "unordered-shard-read";
    case ViolationKind::kDestBufferLifetime: return "dest-buffer-lifetime";
    case ViolationKind::kFenceWithPending: return "fence-with-pending";
    case ViolationKind::kConcurrentShardWrite: return "concurrent-shard-write";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "simcheck[" << violation_kind_name(kind) << "]: " << detail << '\n'
     << "  first : " << render_span(first) << '\n'
     << "  second: " << render_span(second);
  return os.str();
}

Checker::Checker(int p, std::vector<Violation>* sink)
    : p_(p),
      sink_(sink),
      clocks_(static_cast<std::size_t>(p),
              VectorClock(static_cast<std::size_t>(p), 0)),
      posted_(static_cast<std::size_t>(p),
              VectorClock(static_cast<std::size_t>(p), 0)) {}

bool Checker::covered_by(const VectorClock& a, const VectorClock& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

void Checker::post_clock(int rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  posted_[static_cast<std::size_t>(rank)] =
      clocks_[static_cast<std::size_t>(rank)];
}

void Checker::join_group(const std::vector<int>& members, int rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  VectorClock& mine = clocks_[static_cast<std::size_t>(rank)];
  for (const int member : members) {
    const VectorClock& theirs = posted_[static_cast<std::size_t>(member)];
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = std::max(mine[i], theirs[i]);
  }
  ++mine[static_cast<std::size_t>(rank)];
}

VectorClock Checker::on_send(int rank) {
  const std::lock_guard<std::mutex> lock(mutex_);
  VectorClock& mine = clocks_[static_cast<std::size_t>(rank)];
  ++mine[static_cast<std::size_t>(rank)];
  return mine;
}

void Checker::on_recv(int rank, const VectorClock& sender_clock) {
  const std::lock_guard<std::mutex> lock(mutex_);
  VectorClock& mine = clocks_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < mine.size(); ++i)
    mine[i] = std::max(mine[i], sender_clock[i]);
  ++mine[static_cast<std::size_t>(rank)];
}

void Checker::on_expose(std::shared_ptr<const void> key, int owner,
                        const AccessSpan& expose) {
  const std::lock_guard<std::mutex> lock(mutex_);
  VectorClock& mine = clocks_[static_cast<std::size_t>(owner)];
  ++mine[static_cast<std::size_t>(owner)];
  ShardShadow& shadow = shards_[key.get()];
  shadow.pin = std::move(key);
  shadow.owner = owner;
  shadow.write_clock = mine;
  shadow.last_write = expose;
  shadow.last_read.assign(static_cast<std::size_t>(p_), ReadRecord{});
}

void Checker::on_shard_read(const void* key, int reader,
                            const AccessSpan& read) {
  Violation violation;
  bool flagged = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = shards_.find(key);
    MSP_CHECK_MSG(it != shards_.end(),
                  "simcheck: rget on a window the checker never saw exposed");
    ShardShadow& shadow = it->second;
    VectorClock& mine = clocks_[static_cast<std::size_t>(reader)];
    ++mine[static_cast<std::size_t>(reader)];
    if (!covered_by(shadow.write_clock, mine)) {
      violation.kind = ViolationKind::kUnorderedShardRead;
      violation.first = shadow.last_write;
      violation.second = read;
      violation.detail =
          "read of rank " + std::to_string(shadow.owner) +
          "'s shard epoch is not ordered after the epoch's last write "
          "(missing fence/barrier between the write and this rget)";
      flagged = true;
    }
    ReadRecord& record =
        shadow.last_read[static_cast<std::size_t>(reader)];
    record.valid = true;
    record.clock = mine;
    record.span = read;
  }
  if (flagged) report(std::move(violation));
}

void Checker::on_shard_write(const void* key, int owner,
                             const AccessSpan& write) {
  std::vector<Violation> flagged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = shards_.find(key);
    MSP_CHECK_MSG(it != shards_.end(),
                  "simcheck: shard write on a window the checker never saw "
                  "exposed");
    ShardShadow& shadow = it->second;
    VectorClock& mine = clocks_[static_cast<std::size_t>(owner)];
    ++mine[static_cast<std::size_t>(owner)];
    for (const ReadRecord& record : shadow.last_read) {
      if (!record.valid || covered_by(record.clock, mine)) continue;
      Violation violation;
      violation.kind = ViolationKind::kConcurrentShardWrite;
      violation.first = record.span;
      violation.second = write;
      violation.detail =
          "local write to rank " + std::to_string(owner) +
          "'s exposed shard is concurrent with a peer's read of the epoch "
          "(the epoch was never closed by a fence/barrier after the read)";
      flagged.push_back(std::move(violation));
    }
    for (std::size_t i = 0; i < shadow.write_clock.size(); ++i)
      shadow.write_clock[i] = std::max(shadow.write_clock[i], mine[i]);
    shadow.last_write = write;
  }
  for (Violation& violation : flagged) report(std::move(violation));
}

void Checker::report(Violation violation) {
  if (sink_ != nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_->push_back(std::move(violation));
    return;
  }
  throw CheckFailed(violation);
}

}  // namespace msp::sim::check
