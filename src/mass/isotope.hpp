// Isotopic envelope modeling.
//
// Citation [4] of the paper is the authors' own "Improved peptide
// sequencing using isotope information inherent in tandem mass spectra"
// (Cannon & Jarman 2003): real peptide peaks are not single lines but
// envelopes (M, M+1, M+2, ...) whose relative heights follow the elemental
// composition — information a scorer can exploit and a simulator must
// reproduce. We model composition with the standard "averagine" trick:
// an average amino acid (C4.94 H7.76 N1.36 O1.48 S0.04) scaled to the
// peptide mass, with envelope heights from the per-element heavy-isotope
// abundances (a Poisson-binomial collapsed to independent contributions —
// accurate to well under a percent for peptides < 10 kDa).
#pragma once

#include <cstddef>
#include <vector>

namespace msp {

/// Relative abundances of M, M+1, ... M+k for a peptide of the given
/// monoisotopic mass, normalized so the largest peak is 1. `max_isotopes`
/// caps the envelope length (k+1 values returned, trailing near-zeros
/// trimmed).
std::vector<double> isotope_envelope(double monoisotopic_mass,
                                     std::size_t max_isotopes = 5);

/// Expected number of heavy-isotope substitutions for a peptide of this
/// mass (the envelope's Poisson rate); grows ~linearly with mass, crossing
/// 1.0 near 1.8 kDa — why the M+1 peak overtakes M for large peptides.
double expected_heavy_isotopes(double monoisotopic_mass);

}  // namespace msp
