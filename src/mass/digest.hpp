// In-silico enzymatic digestion.
//
// The query generator uses tryptic digestion (cleave C-terminal to K/R unless
// followed by P) to sample realistic target peptides, exactly how wet-lab
// samples are prepared before MS. Candidate generation in the search engine
// itself uses the paper's prefix/suffix rule, not digestion — the two are
// deliberately separate code paths.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace msp {

struct DigestOptions {
  /// Peptides with fewer residues are dropped (unobservable in MS).
  std::size_t min_length = 6;
  /// Peptides with more residues are dropped (out of instrument range).
  std::size_t max_length = 40;
  /// Up to this many internal cleavage sites may be skipped per peptide.
  std::size_t missed_cleavages = 0;
};

/// A digested peptide, located within its parent sequence.
struct DigestedPeptide {
  std::size_t offset = 0;  ///< start position in the parent
  std::size_t length = 0;
  std::size_t missed = 0;  ///< number of missed cleavage sites it spans
};

/// True iff trypsin cleaves between position i and i+1 of `residues`
/// (after K or R, not before P).
bool is_tryptic_site(std::string_view residues, std::size_t i);

/// Fully enumerate tryptic peptides of `residues` under `options`.
/// Output is ordered by offset, then by length.
std::vector<DigestedPeptide> digest_tryptic(std::string_view residues,
                                            const DigestOptions& options);

/// Convenience: materialize a digested peptide's residue string.
std::string peptide_string(std::string_view residues,
                           const DigestedPeptide& peptide);

}  // namespace msp
