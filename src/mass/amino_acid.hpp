// Amino-acid residue chemistry: the mass substrate every other module sits on.
//
// Masses are monoisotopic residue masses in daltons (Da) from the standard
// IUPAC tables (same values SEQUEST / X!Tandem / MSPolygraph use). A peptide
// of residues r1..rk has neutral mass  sum(mass(ri)) + H2O;  its singly
// protonated m/z is that plus one proton mass.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace msp {

/// Monoisotopic mass of one water molecule (added once per peptide).
inline constexpr double kWaterMass = 18.0105646863;
/// Monoisotopic proton mass (charge carrier for m/z conversion).
inline constexpr double kProtonMass = 1.00727646688;

/// The 20 standard residues. 'X' (unknown) is handled by is_residue() = false.
inline constexpr std::string_view kResidueAlphabet = "ACDEFGHIKLMNPQRSTVWY";

/// True iff `c` is one of the 20 standard residue codes (upper-case).
bool is_residue(char c) noexcept;

/// Monoisotopic residue mass in Da. Precondition: is_residue(c).
double residue_mass(char c);

/// Average residue mass in Da (used by the average-mass search mode).
double residue_mass_average(char c);

/// Natural abundance (frequency) of each residue in UniProt, used by the
/// synthetic database generator so candidate statistics match real proteins.
double residue_frequency(char c);

/// Residue code for dense table indexing: A=0 … Y=19. Precondition:
/// is_residue(c). Inverse of residue_from_index.
int residue_index(char c);
char residue_from_index(int index);

/// Neutral monoisotopic mass of the peptide `sequence` (residues + water).
/// Throws InvalidArgument on any non-residue character.
double peptide_mass(std::string_view sequence);

/// Average-mass variant of peptide_mass.
double peptide_mass_average(std::string_view sequence);

/// Singly-protonated m/z of a peptide with the given neutral mass & charge.
double mz_from_mass(double neutral_mass, int charge);

/// Neutral mass back from observed m/z at the given charge.
double mass_from_mz(double mz, int charge);

}  // namespace msp
