#include "mass/digest.hpp"

#include "util/error.hpp"

namespace msp {

bool is_tryptic_site(std::string_view residues, std::size_t i) {
  if (i + 1 >= residues.size()) return false;  // no cleavage after last residue
  const char here = residues[i];
  const char next = residues[i + 1];
  return (here == 'K' || here == 'R') && next != 'P';
}

std::vector<DigestedPeptide> digest_tryptic(std::string_view residues,
                                            const DigestOptions& options) {
  MSP_CHECK_MSG(options.min_length >= 1, "min_length must be >= 1");
  MSP_CHECK_MSG(options.max_length >= options.min_length,
                "max_length must be >= min_length");

  // Segment boundaries: starts of fully-cleaved fragments.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i + 1 < residues.size(); ++i)
    if (is_tryptic_site(residues, i)) starts.push_back(i + 1);
  starts.push_back(residues.size());  // sentinel end

  std::vector<DigestedPeptide> out;
  // A peptide with m missed cleavages spans segments [s, s+m].
  for (std::size_t s = 0; s + 1 < starts.size(); ++s) {
    for (std::size_t m = 0; m <= options.missed_cleavages; ++m) {
      const std::size_t last = s + m;
      if (last + 1 >= starts.size()) break;
      const std::size_t begin = starts[s];
      const std::size_t end = starts[last + 1];
      const std::size_t length = end - begin;
      if (length < options.min_length || length > options.max_length) continue;
      out.push_back(DigestedPeptide{begin, length, m});
    }
  }
  return out;
}

std::string peptide_string(std::string_view residues,
                           const DigestedPeptide& peptide) {
  MSP_CHECK(peptide.offset + peptide.length <= residues.size());
  return std::string(residues.substr(peptide.offset, peptide.length));
}

}  // namespace msp
