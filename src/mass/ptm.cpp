#include "mass/ptm.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace msp {

Ptm ptm_phospho_s() { return Ptm{'S', 79.96633, "Phospho(S)"}; }
Ptm ptm_phospho_t() { return Ptm{'T', 79.96633, "Phospho(T)"}; }
Ptm ptm_oxidation_m() { return Ptm{'M', 15.99491, "Oxidation(M)"}; }
Ptm ptm_acetyl_k() { return Ptm{'K', 42.01057, "Acetyl(K)"}; }

namespace {

/// Collect (site, rule) pairs: every position whose residue matches a rule.
std::vector<std::pair<std::uint32_t, std::uint32_t>> modifiable_sites(
    std::string_view peptide, const std::vector<Ptm>& rules) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sites;
  for (std::uint32_t pos = 0; pos < peptide.size(); ++pos)
    for (std::uint32_t r = 0; r < rules.size(); ++r)
      if (peptide[pos] == rules[r].residue) sites.emplace_back(pos, r);
  return sites;
}

void recurse(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& sites,
             const std::vector<Ptm>& rules, std::size_t max_mods,
             std::size_t first, PtmVariant& current,
             std::vector<PtmVariant>& out) {
  out.push_back(current);
  if (current.sites.size() >= max_mods) return;
  std::uint32_t last_pos =
      current.sites.empty() ? 0 : current.sites.back().first + 1;
  for (std::size_t i = first; i < sites.size(); ++i) {
    // A physical site carries at most one modification; because `sites`
    // lists (position, rule) pairs sorted by position, requiring a strictly
    // increasing position guarantees that.
    if (!current.sites.empty() && sites[i].first < last_pos) continue;
    current.sites.push_back(sites[i]);
    current.mass_delta += rules[sites[i].second].mass_delta;
    recurse(sites, rules, max_mods, i + 1, current, out);
    current.mass_delta -= rules[sites[i].second].mass_delta;
    current.sites.pop_back();
  }
}

}  // namespace

std::vector<PtmVariant> enumerate_variants(std::string_view peptide,
                                           const std::vector<Ptm>& rules,
                                           std::size_t max_mods) {
  for (const Ptm& rule : rules)
    MSP_CHECK_MSG(rule.residue >= 'A' && rule.residue <= 'Z',
                  "PTM rule must target a residue letter");
  const auto sites = modifiable_sites(peptide, rules);
  std::vector<PtmVariant> out;
  PtmVariant current;
  recurse(sites, rules, max_mods, 0, current, out);
  return out;
}

std::uint64_t count_variants(std::string_view peptide,
                             const std::vector<Ptm>& rules,
                             std::size_t max_mods) {
  // Sites at distinct positions are independent; positions matched by k>1
  // rules contribute a factor handled by per-position rule counts.
  // count = sum over subsets of positions of size <= max_mods of
  //         prod(rules matching that position).
  std::vector<std::uint64_t> per_position;
  for (char c : peptide) {
    std::uint64_t matches = 0;
    for (const Ptm& rule : rules)
      if (c == rule.residue) ++matches;
    if (matches > 0) per_position.push_back(matches);
  }
  // DP over positions: ways[k] = #assignments using exactly k modified sites.
  std::vector<std::uint64_t> ways(max_mods + 1, 0);
  ways[0] = 1;
  for (std::uint64_t matches : per_position)
    for (std::size_t k = std::min(max_mods, per_position.size()); k >= 1; --k)
      ways[k] += ways[k - 1] * matches;
  std::uint64_t total = 0;
  for (std::uint64_t w : ways) total += w;
  return total;
}

std::string annotate(std::string_view peptide, const PtmVariant& variant,
                     const std::vector<Ptm>& rules) {
  std::ostringstream os;
  std::size_t next = 0;
  for (std::uint32_t pos = 0; pos < peptide.size(); ++pos) {
    os << peptide[pos];
    if (next < variant.sites.size() && variant.sites[next].first == pos) {
      const Ptm& rule = rules[variant.sites[next].second];
      os << "[+" << std::fixed << std::setprecision(2) << rule.mass_delta
         << ']';
      ++next;
    }
  }
  return os.str();
}

}  // namespace msp
