// Post-translational modifications (PTMs).
//
// The paper's related-work discussion singles out PTM support as a feature
// that multiplies the candidate space (Fig. 1b) and that X!Tandem's parallel
// variants either lack or bolt on. We model the standard variable-PTM
// search: each PTM adds a fixed mass delta to a residue type, and a peptide
// variant chooses a subset of its modifiable sites, bounded by
// `max_mods_per_peptide`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace msp {

/// One modification rule: residues of type `residue` may gain `mass_delta`.
struct Ptm {
  char residue = 0;        ///< e.g. 'S' for phosphoserine
  double mass_delta = 0.0; ///< e.g. +79.96633 for phosphorylation
  std::string name;        ///< e.g. "Phospho"
};

/// Commonly searched variable modifications, for examples and benchmarks.
Ptm ptm_phospho_st();      ///< +79.96633 on S/T (S and T registered apart)
Ptm ptm_phospho_s();
Ptm ptm_phospho_t();
Ptm ptm_oxidation_m();     ///< +15.99491 on M
Ptm ptm_acetyl_k();        ///< +42.01057 on K

/// One concrete assignment of modifications to sites of a peptide.
struct PtmVariant {
  /// Site indices (into the peptide) that carry a modification, paired with
  /// the PTM index (into the rule list) applied at that site. Sorted by site.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sites;
  double mass_delta = 0.0;  ///< total added mass
};

/// Enumerate all variants of `peptide` under `rules` with at most
/// `max_mods` modified sites (the unmodified variant is always first).
/// The count grows as sum_k C(sites, k); callers cap max_mods (typ. 2-3).
std::vector<PtmVariant> enumerate_variants(std::string_view peptide,
                                           const std::vector<Ptm>& rules,
                                           std::size_t max_mods);

/// Number of variants enumerate_variants would return, without materializing
/// them — used by the Fig. 1b candidate-magnitude model.
std::uint64_t count_variants(std::string_view peptide,
                             const std::vector<Ptm>& rules,
                             std::size_t max_mods);

/// Human-readable form, e.g. "PEPS[+79.97]TIDE".
std::string annotate(std::string_view peptide, const PtmVariant& variant,
                     const std::vector<Ptm>& rules);

/// Extreme total mass deltas any variant under `rules` can carry with at
/// most `max_mods` modified sites: min_total ≤ 0 ≤ max_total always (the
/// unmodified variant contributes zero). This is the one definition both
/// the open-search kernels and mass routing widen their precursor windows
/// by, so a skip decision and a scoring decision can never disagree.
struct PtmDeltaRange {
  double min_total = 0.0;
  double max_total = 0.0;
};

inline PtmDeltaRange ptm_delta_range(const std::vector<Ptm>& rules,
                                     std::size_t max_mods) {
  PtmDeltaRange range;
  if (rules.empty() || max_mods == 0) return range;
  double min_delta = 0.0;
  double max_delta = 0.0;
  for (const Ptm& rule : rules) {
    min_delta = std::min(min_delta, rule.mass_delta);
    max_delta = std::max(max_delta, rule.mass_delta);
  }
  const double mods = static_cast<double>(max_mods);
  range.min_total = min_delta * mods;
  range.max_total = max_delta * mods;
  return range;
}

}  // namespace msp
