#include "mass/isotope.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace msp {
namespace {

// Averagine composition per 111.1254 Da of peptide (Senko et al. 1995).
constexpr double kAveragineMass = 111.1254;
constexpr double kCarbons = 4.9384;
constexpr double kHydrogens = 7.7583;
constexpr double kNitrogens = 1.3577;
constexpr double kOxygens = 1.4773;
constexpr double kSulfurs = 0.0417;

// Natural heavy-isotope abundances (probability a given atom is +1; sulfur
// also has a strong +2 isotope handled separately).
constexpr double kC13 = 0.0107;
constexpr double kH2 = 0.000115;
constexpr double kN15 = 0.00364;
constexpr double kO17 = 0.00038;
constexpr double kO18 = 0.00205;  // +2
constexpr double kS33 = 0.0075;
constexpr double kS34 = 0.0425;  // +2

}  // namespace

double expected_heavy_isotopes(double monoisotopic_mass) {
  MSP_CHECK_MSG(monoisotopic_mass > 0.0, "mass must be positive");
  const double units = monoisotopic_mass / kAveragineMass;
  return units * (kCarbons * kC13 + kHydrogens * kH2 + kNitrogens * kN15 +
                  kOxygens * kO17 + kSulfurs * kS33);
}

std::vector<double> isotope_envelope(double monoisotopic_mass,
                                     std::size_t max_isotopes) {
  MSP_CHECK_MSG(monoisotopic_mass > 0.0, "mass must be positive");
  MSP_CHECK_MSG(max_isotopes >= 1, "need at least the monoisotopic peak");
  const double units = monoisotopic_mass / kAveragineMass;

  // +1 substitutions: Poisson with rate λ1; +2 substitutions (18O, 34S):
  // Poisson with rate λ2. Envelope = convolution of the two.
  const double lambda1 = expected_heavy_isotopes(monoisotopic_mass);
  const double lambda2 = units * (kOxygens * kO18 + kSulfurs * kS34);

  std::vector<double> envelope(max_isotopes + 1, 0.0);
  // P(j ones) * P(k twos) lands at offset j + 2k.
  double p1 = std::exp(-lambda1);
  for (std::size_t j = 0; j <= max_isotopes; ++j) {
    double p2 = std::exp(-lambda2);
    for (std::size_t k = 0; j + 2 * k <= max_isotopes; ++k) {
      envelope[j + 2 * k] += p1 * p2;
      p2 *= lambda2 / static_cast<double>(k + 1);
    }
    p1 *= lambda1 / static_cast<double>(j + 1);
  }

  const double peak = *std::max_element(envelope.begin(), envelope.end());
  for (double& value : envelope) value /= peak;
  // Trim the negligible tail.
  while (envelope.size() > 1 && envelope.back() < 1e-3) envelope.pop_back();
  return envelope;
}

}  // namespace msp
