// Peptide and protein value types.
//
// A Protein is a database entry (a full sequence from FASTA or the synthetic
// generator). A Peptide is a contiguous fragment of a protein — in this
// paper's formulation, candidates are *prefixes or suffixes* of database
// sequences whose mass falls in the query window (Section II-A), so a
// Peptide records its origin (protein index, offset, length, end) rather
// than copying characters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mass/amino_acid.hpp"

namespace msp {

/// One database protein sequence.
struct Protein {
  std::string id;        ///< accession, unique within a database
  std::string residues;  ///< upper-case residue string

  std::size_t length() const { return residues.size(); }
};

/// A protein database plus derived totals (paper's n, N).
struct ProteinDatabase {
  std::vector<Protein> proteins;

  std::size_t sequence_count() const { return proteins.size(); }
  /// Total residue count — the paper's N.
  std::size_t total_residues() const;
  double average_length() const;
};

/// Which part of the parent protein a candidate fragment comes from.
/// kPrefix/kSuffix are the paper's candidate rule; kInternal appears only
/// in the engine's tryptic-candidate extension mode.
enum class FragmentEnd : std::uint8_t { kPrefix, kSuffix, kInternal };

/// A candidate peptide: a prefix or suffix of a database protein.
struct Peptide {
  std::uint32_t protein_index = 0;  ///< into ProteinDatabase::proteins
  std::uint32_t length = 0;         ///< number of residues
  FragmentEnd end = FragmentEnd::kPrefix;
  double mass = 0.0;  ///< neutral monoisotopic mass (residues + water)

  /// View of the residue characters inside the parent protein.
  std::string_view view(const ProteinDatabase& db) const;
};

/// Running prefix/suffix masses of one protein, so candidate masses can be
/// looked up in O(1) per length. prefix_mass(k) = mass of first k residues
/// (+ water); suffix_mass(k) = mass of last k residues (+ water).
class FragmentMassIndex {
 public:
  explicit FragmentMassIndex(std::string_view residues);

  std::size_t length() const { return cumulative_.size() - 1; }
  double prefix_mass(std::size_t k) const;
  double suffix_mass(std::size_t k) const;

 private:
  std::vector<double> cumulative_;  ///< [k] = sum of the first k residues
};

}  // namespace msp
