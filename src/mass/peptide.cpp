#include "mass/peptide.hpp"

#include "util/error.hpp"

namespace msp {

std::size_t ProteinDatabase::total_residues() const {
  std::size_t total = 0;
  for (const auto& protein : proteins) total += protein.length();
  return total;
}

double ProteinDatabase::average_length() const {
  if (proteins.empty()) return 0.0;
  return static_cast<double>(total_residues()) /
         static_cast<double>(proteins.size());
}

std::string_view Peptide::view(const ProteinDatabase& db) const {
  MSP_CHECK(protein_index < db.proteins.size());
  const std::string& parent = db.proteins[protein_index].residues;
  MSP_CHECK(length <= parent.size());
  if (end == FragmentEnd::kPrefix) return {parent.data(), length};
  return {parent.data() + parent.size() - length, length};
}

FragmentMassIndex::FragmentMassIndex(std::string_view residues) {
  cumulative_.reserve(residues.size() + 1);
  cumulative_.push_back(0.0);
  double running = 0.0;
  for (char c : residues) {
    running += residue_mass(c);
    cumulative_.push_back(running);
  }
}

double FragmentMassIndex::prefix_mass(std::size_t k) const {
  MSP_CHECK(k < cumulative_.size());
  return cumulative_[k] + kWaterMass;
}

double FragmentMassIndex::suffix_mass(std::size_t k) const {
  MSP_CHECK(k < cumulative_.size());
  return cumulative_.back() - cumulative_[cumulative_.size() - 1 - k] +
         kWaterMass;
}

}  // namespace msp
