#include "mass/amino_acid.hpp"

#include "util/error.hpp"

namespace msp {
namespace {

// Index 0..25 by (letter - 'A'); non-residues hold a negative sentinel.
constexpr double kInvalid = -1.0;

// Monoisotopic residue masses (Da), standard IUPAC values.
constexpr std::array<double, 26> kMono = {
    /*A*/ 71.03711381,  /*B*/ kInvalid,     /*C*/ 103.00918448,
    /*D*/ 115.02694302, /*E*/ 129.04259309, /*F*/ 147.06841391,
    /*G*/ 57.02146374,  /*H*/ 137.05891186, /*I*/ 113.08406398,
    /*J*/ kInvalid,     /*K*/ 128.09496302, /*L*/ 113.08406398,
    /*M*/ 131.04048491, /*N*/ 114.04292744, /*O*/ kInvalid,
    /*P*/ 97.05276385,  /*Q*/ 128.05857751, /*R*/ 156.10111102,
    /*S*/ 87.03202841,  /*T*/ 101.04767847, /*U*/ kInvalid,
    /*V*/ 99.06841391,  /*W*/ 186.07931295, /*X*/ kInvalid,
    /*Y*/ 163.06332853, /*Z*/ kInvalid};

// Average residue masses (Da).
constexpr std::array<double, 26> kAvg = {
    /*A*/ 71.0788,  /*B*/ kInvalid, /*C*/ 103.1388, /*D*/ 115.0886,
    /*E*/ 129.1155, /*F*/ 147.1766, /*G*/ 57.0519,  /*H*/ 137.1411,
    /*I*/ 113.1594, /*J*/ kInvalid, /*K*/ 128.1741, /*L*/ 113.1594,
    /*M*/ 131.1926, /*N*/ 114.1038, /*O*/ kInvalid, /*P*/ 97.1167,
    /*Q*/ 128.1307, /*R*/ 156.1875, /*S*/ 87.0782,  /*T*/ 101.1051,
    /*U*/ kInvalid, /*V*/ 99.1326,  /*W*/ 186.2132, /*X*/ kInvalid,
    /*Y*/ 163.1760, /*Z*/ kInvalid};

// UniProtKB/Swiss-Prot residue frequencies (release-era averages, sum ≈ 1).
constexpr std::array<double, 26> kFreq = {
    /*A*/ 0.0825, /*B*/ 0.0,   /*C*/ 0.0137, /*D*/ 0.0545, /*E*/ 0.0675,
    /*F*/ 0.0386, /*G*/ 0.0707, /*H*/ 0.0227, /*I*/ 0.0596, /*J*/ 0.0,
    /*K*/ 0.0584, /*L*/ 0.0966, /*M*/ 0.0242, /*N*/ 0.0406, /*O*/ 0.0,
    /*P*/ 0.0470, /*Q*/ 0.0393, /*R*/ 0.0553, /*S*/ 0.0656, /*T*/ 0.0534,
    /*U*/ 0.0,   /*V*/ 0.0687, /*W*/ 0.0108, /*X*/ 0.0,    /*Y*/ 0.0292,
    /*Z*/ 0.0};

// Dense index (A=0 … Y=19) for the 20 standard residues, -1 otherwise.
constexpr std::array<int, 26> kDense = {
    0,  -1, 1,  2,  3,  4,  5,  6,  7,  -1, 8,  9,  10,
    11, -1, 12, 13, 14, 15, 16, -1, 17, 18, -1, 19, -1};

int letter_slot(char c) {
  if (c < 'A' || c > 'Z') return -1;
  return c - 'A';
}

}  // namespace

bool is_residue(char c) noexcept {
  const int slot = letter_slot(c);
  return slot >= 0 && kMono[static_cast<std::size_t>(slot)] > 0.0;
}

double residue_mass(char c) {
  MSP_CHECK_MSG(is_residue(c), "not an amino-acid residue: '" << c << "'");
  return kMono[static_cast<std::size_t>(letter_slot(c))];
}

double residue_mass_average(char c) {
  MSP_CHECK_MSG(is_residue(c), "not an amino-acid residue: '" << c << "'");
  return kAvg[static_cast<std::size_t>(letter_slot(c))];
}

double residue_frequency(char c) {
  MSP_CHECK_MSG(is_residue(c), "not an amino-acid residue: '" << c << "'");
  return kFreq[static_cast<std::size_t>(letter_slot(c))];
}

int residue_index(char c) {
  MSP_CHECK_MSG(is_residue(c), "not an amino-acid residue: '" << c << "'");
  return kDense[static_cast<std::size_t>(letter_slot(c))];
}

char residue_from_index(int index) {
  MSP_CHECK_MSG(index >= 0 && index < 20,
                "residue index out of range: " << index);
  return kResidueAlphabet[static_cast<std::size_t>(index)];
}

double peptide_mass(std::string_view sequence) {
  double mass = kWaterMass;
  for (char c : sequence) mass += residue_mass(c);
  return mass;
}

double peptide_mass_average(std::string_view sequence) {
  double mass = kWaterMass;  // water's average mass differs by <0.01 Da; the
                             // monoisotopic constant is fine at our tolerances
  for (char c : sequence) mass += residue_mass_average(c);
  return mass;
}

double mz_from_mass(double neutral_mass, int charge) {
  MSP_CHECK_MSG(charge >= 1, "charge must be >= 1");
  return (neutral_mass + charge * kProtonMass) / charge;
}

double mass_from_mz(double mz, int charge) {
  MSP_CHECK_MSG(charge >= 1, "charge must be >= 1");
  return mz * charge - charge * kProtonMass;
}

}  // namespace msp
